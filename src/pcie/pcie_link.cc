#include "src/pcie/pcie_link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/assert.h"

namespace kvd {

PcieLink::PcieLink(Simulator& sim, const PcieLinkConfig& config, std::string name,
                   uint64_t rng_seed)
    : sim_(sim),
      config_(config),
      name_(std::move(name)),
      rng_(rng_seed),
      picos_per_byte_(PicosPerByte(config.bandwidth_bytes_per_sec)),
      nonposted_credits_(name_ + "/np_credits", config.nonposted_header_credits),
      posted_credits_(name_ + "/p_credits", config.posted_header_credits) {}

SimTime PcieLink::SerializeUpstream(uint32_t bytes) {
  const auto wire_time = static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) * picos_per_byte_));
  const SimTime start = std::max(sim_.Now(), upstream_free_at_);
  upstream_free_at_ = start + wire_time;
  upstream_bytes_ += bytes;
  return upstream_free_at_;
}

SimTime PcieLink::SerializeDownstream(uint32_t bytes) {
  const auto wire_time = static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) * picos_per_byte_));
  const SimTime start = std::max(sim_.Now(), downstream_free_at_);
  downstream_free_at_ = start + wire_time;
  downstream_bytes_ += bytes;
  return downstream_free_at_;
}

SimTime PcieLink::SampleReadLatency(bool random_access) {
  SimTime latency = config_.cached_read_latency;
  if (random_access && config_.random_read_extra_mean > 0) {
    // Exponential tail from DRAM row misses, refresh, and completion
    // reordering; mean matches the paper's measured +250 ns.
    const double u = std::max(rng_.NextDouble(), 1e-12);
    const double extra = -std::log(u) * static_cast<double>(config_.random_read_extra_mean);
    latency += static_cast<SimTime>(std::llround(extra));
  }
  return latency;
}

void PcieLink::SubmitRead(uint32_t payload_bytes, bool random_access,
                          std::function<void()> done) {
  KVD_CHECK(payload_bytes > 0 && payload_bytes <= config_.max_payload_bytes);
  nonposted_credits_.Acquire(1, [this, payload_bytes, random_access,
                                 done = std::move(done)]() mutable {
    read_tlps_++;
    // Request header travels upstream; credit returns once the host root
    // complex has consumed the request.
    const SimTime request_at_host = SerializeUpstream(config_.tlp_header_bytes);
    sim_.ScheduleAt(request_at_host + config_.host_consume_latency,
                    [this] { nonposted_credits_.Release(1); });

    // Host memory access, then the completion TLP travels downstream.
    const SimTime mem_done = request_at_host + SampleReadLatency(random_access);
    const SimTime issue_time = sim_.Now();
    sim_.ScheduleAt(mem_done, [this, payload_bytes, issue_time,
                               done = std::move(done)]() mutable {
      const SimTime completion_arrival =
          SerializeDownstream(config_.tlp_header_bytes + payload_bytes);
      sim_.ScheduleAt(completion_arrival, [this, payload_bytes, issue_time,
                                           done = std::move(done)] {
        read_latency_.Add((sim_.Now() - issue_time) / kNanosecond);
        if (tracer_ != nullptr && tracer_->enabled()) {
          tracer_->Complete("pcie", name_ + "/dma_read", issue_time, sim_.Now(),
                            {{"bytes", payload_bytes}});
        }
        done();
      });
    });
  });
}

void PcieLink::SubmitWrite(uint32_t payload_bytes, std::function<void()> done) {
  KVD_CHECK(payload_bytes > 0 && payload_bytes <= config_.max_payload_bytes);
  posted_credits_.Acquire(1, [this, payload_bytes, done = std::move(done)]() mutable {
    write_tlps_++;
    const SimTime issue_time = sim_.Now();
    const SimTime on_wire = SerializeUpstream(config_.tlp_header_bytes + payload_bytes);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Complete("pcie", name_ + "/dma_write", issue_time, on_wire,
                        {{"bytes", payload_bytes}});
    }
    // Posted semantics: complete at the requester once the TLP is sent.
    sim_.ScheduleAt(on_wire, std::move(done));
    sim_.ScheduleAt(on_wire + config_.host_consume_latency,
                    [this] { posted_credits_.Release(1); });
  });
}

void PcieLink::RegisterMetrics(MetricRegistry& registry) const {
  const MetricLabels labels = {{"link", name_}};
  registry.RegisterCounter("kvd_pcie_read_tlps_total", "Read TLPs issued", labels,
                           &read_tlps_);
  registry.RegisterCounter("kvd_pcie_write_tlps_total", "Write TLPs issued", labels,
                           &write_tlps_);
  registry.RegisterCounter("kvd_pcie_upstream_bytes_total",
                           "Bytes NIC -> host (incl. TLP headers)", labels,
                           &upstream_bytes_);
  registry.RegisterCounter("kvd_pcie_downstream_bytes_total",
                           "Bytes host -> NIC (incl. TLP headers)", labels,
                           &downstream_bytes_);
  registry.RegisterHistogram("kvd_pcie_read_latency_ns",
                             "DMA read latency, issue to completion", labels,
                             [this] { return read_latency_; });
}

}  // namespace kvd
