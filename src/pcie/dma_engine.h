// DMA engine multiplexing the NIC's PCIe endpoints (paper §2.4, §4).
//
// The FPGA's DMA engine supports only 64 outstanding PCIe tags, shared across
// both Gen3 x8 links of the bifurcated x16 connector — this, not raw
// bandwidth, caps random 64 B read throughput at ~60 Mops (Figure 3a).
// Requests larger than the TLP max payload are split into multiple TLPs,
// each consuming a tag for its full round trip.
#ifndef SRC_PCIE_DMA_ENGINE_H_
#define SRC_PCIE_DMA_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/obs/request_trace.h"
#include "src/pcie/pcie_link.h"
#include "src/sim/simulator.h"
#include "src/sim/token_pool.h"

namespace kvd {

struct DmaEngineConfig {
  uint32_t num_links = 2;
  uint32_t read_tags = 64;  // shared across links
  // Transient completion errors (injected via FaultInjector) are replayed up
  // to this many transmissions per TLP; exhausting the budget is fatal, the
  // model's equivalent of a PCIe AER uncorrectable error.
  uint32_t max_tlp_attempts = 8;
  PcieLinkConfig link;
};

class DmaEngine {
 public:
  DmaEngine(Simulator& sim, const DmaEngineConfig& config);

  // DMA read of `bytes` starting at `address`; `done` fires when all
  // completions have arrived. `random_access` selects uncached latency.
  // `trace` (if nonzero) records one kDmaTlp span per TLP attempt.
  void Read(uint64_t address, uint32_t bytes, std::function<void()> done,
            bool random_access = true, uint64_t trace = 0);

  // Posted DMA write; `done` fires when the last TLP is on the wire.
  void Write(uint64_t address, uint32_t bytes, std::function<void()> done,
             uint64_t trace = 0);

  const DmaEngineConfig& config() const { return config_; }

  // Registers engine-level counters plus every link's metrics; forwards the
  // tracer to the links.
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer);
  void SetRequestTracer(RequestTracer* tracer) { request_tracer_ = tracer; }
  // Attaches fault injection for transient completion errors; each failed
  // TLP re-runs through the link (holding its tag) with a bounded budget.
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  PcieLink& link(uint32_t i) { return *links_[i]; }
  uint32_t num_links() const { return static_cast<uint32_t>(links_.size()); }

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t writes_issued() const { return writes_issued_; }
  uint64_t read_retries() const { return read_retries_; }
  uint64_t write_retries() const { return write_retries_; }
  const TokenPool& tag_pool() const { return read_tags_; }

  // Aggregate read latency over all links, in nanoseconds.
  LatencyHistogram AggregateReadLatency() const;

 private:
  PcieLink& PickLink(uint64_t address);
  // One TLP transmission; on an injected transient completion error, re-runs
  // itself with `attempt + 1` until the budget is spent.
  void SubmitReadTlp(uint64_t address, uint32_t bytes, bool random_access,
                     uint32_t attempt, uint64_t trace,
                     std::function<void()> on_done);
  void SubmitWriteTlp(uint64_t address, uint32_t bytes, uint32_t attempt,
                      uint64_t trace, std::function<void()> on_done);

  Simulator& sim_;
  DmaEngineConfig config_;
  FaultInjector* fault_ = nullptr;
  RequestTracer* request_tracer_ = nullptr;
  std::vector<std::unique_ptr<PcieLink>> links_;
  TokenPool read_tags_;
  uint64_t reads_issued_ = 0;
  uint64_t writes_issued_ = 0;
  uint64_t read_retries_ = 0;
  uint64_t write_retries_ = 0;
};

}  // namespace kvd

#endif  // SRC_PCIE_DMA_ENGINE_H_
