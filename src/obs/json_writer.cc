#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "src/common/assert.h"

namespace kvd {

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    KVD_CHECK_MSG(out_.empty(), "only one top-level JSON value allowed");
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    KVD_CHECK_MSG(top.key_pending, "object value requires a preceding Key()");
    top.key_pending = false;
  } else {
    if (top.has_items) {
      out_ += ',';
    }
  }
  top.has_items = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'o'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  KVD_CHECK(!stack_.empty() && stack_.back().kind == 'o' &&
            !stack_.back().key_pending);
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'a'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  KVD_CHECK(!stack_.empty() && stack_.back().kind == 'a');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  KVD_CHECK(!stack_.empty() && stack_.back().kind == 'o' &&
            !stack_.back().key_pending);
  if (stack_.back().has_items) {
    out_ += ',';
  }
  stack_.back().key_pending = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) {
    return Null();
  }
  BeforeValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view raw) {
  KVD_CHECK_MSG(!raw.empty(), "RawValue requires a non-empty JSON value");
  BeforeValue();
  out_ += raw;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  return Key(key).String(value);
}

JsonWriter& JsonWriter::Field(std::string_view key, uint64_t value) {
  return Key(key).Uint(value);
}

JsonWriter& JsonWriter::Field(std::string_view key, double value) {
  return Key(key).Number(value);
}

}  // namespace kvd
