// Per-operation request tracing: the observability layer behind the paper's
// Fig. 17 latency decomposition ("where does each microsecond of a GET/PUT
// go?").
//
// A trace is created client-side when an operation is first sent and follows
// the op through every layer on the one simulated clock: client retransmission
// attempts, network flight, reliable-frame decode, processor admission and
// retirement, reservation-station waits, dispatcher/DMA/NIC-DRAM accesses,
// and — for replicated writes — log append, frame shipping, quorum wait, and
// commit. Two record kinds:
//
//   - checkpoints (TracePoint): one timestamp per lifecycle milestone,
//     first-write-wins. The interval between consecutive *present* checkpoints
//     is a named stage, so per-op stage durations sum exactly to the measured
//     end-to-end latency by construction.
//   - spans (TraceSpan): typed intervals for overlapping sub-work (individual
//     DMA TLPs, NIC-DRAM channel occupancy, station parking, replica frame
//     shipping, retransmission backoff).
//
// Ops carry a 64-bit trace handle in-memory only (never on the wire); handle
// 0 means untraced, so a disabled tracer costs the hot paths one predictable
// branch. Everything runs on the simulated clock, so same-seed runs produce
// bit-identical traces.
#ifndef SRC_OBS_REQUEST_TRACE_H_
#define SRC_OBS_REQUEST_TRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/net/kv_types.h"
#include "src/obs/metric_registry.h"
#include "src/sim/simulator.h"

namespace kvd {

class JsonWriter;

// Lifecycle checkpoints in chronological (= enum) order. A given op stamps a
// subset: unreplicated ops skip the kRepl* points, reads skip them too.
enum class TracePoint : uint8_t {
  kClientSend = 0,    // first wire transmission leaves the client
  kServerReceive,     // frame decoded and admitted server-side
  kSubmit,            // handed to the KV processor
  kAdmit,             // accepted by the reservation station
  kRetire,            // execution complete, result final
  kReplAppend,        // write appended to the primary's replication log
  kReplCommit,        // quorum reached, write durable
  kResponseSent,      // response frame handed to the network
  kClientReceive,     // response decoded client-side
};

inline constexpr size_t kNumTracePoints = 9;

constexpr const char* TracePointName(TracePoint point) {
  switch (point) {
    case TracePoint::kClientSend:
      return "client_send";
    case TracePoint::kServerReceive:
      return "server_receive";
    case TracePoint::kSubmit:
      return "submit";
    case TracePoint::kAdmit:
      return "admit";
    case TracePoint::kRetire:
      return "retire";
    case TracePoint::kReplAppend:
      return "repl_append";
    case TracePoint::kReplCommit:
      return "repl_commit";
    case TracePoint::kResponseSent:
      return "response_sent";
    case TracePoint::kClientReceive:
      return "client_receive";
  }
  return "unknown_point";
}

// Name of the latency stage that *ends* at `point` (the interval since the
// previous present checkpoint). kClientSend starts the timeline and ends no
// stage.
constexpr const char* StageName(TracePoint point) {
  switch (point) {
    case TracePoint::kClientSend:
      return "origin";
    case TracePoint::kServerReceive:
      return "net_request";
    case TracePoint::kSubmit:
      return "decode";
    case TracePoint::kAdmit:
      return "queue";
    case TracePoint::kRetire:
      return "execute";
    case TracePoint::kReplAppend:
      return "log_append";
    case TracePoint::kReplCommit:
      return "quorum_wait";
    case TracePoint::kResponseSent:
      return "respond";
    case TracePoint::kClientReceive:
      return "net_response";
  }
  return "unknown_stage";
}

// Typed sub-intervals that can overlap each other and the stage boundaries.
enum class SpanKind : uint8_t {
  kNetWire = 0,     // serialization + flight on a network direction
  kStationWait,     // parked in the reservation station behind a key
  kMemAccess,       // one LoadDispatcher access (detail: route code)
  kDmaTlp,          // one PCIe TLP attempt (detail: bytes)
  kNicDramAccess,   // NIC-DRAM channel occupancy + access (detail: bytes)
  kReplShip,        // replication frame primary -> backup (detail: replica)
  kRetransmit,      // client retransmission wait (detail: attempt/cause)
  kBusyRetry,       // client backoff after a kBusy rejection
  kDeadlineWait,    // queue time an op spent waiting before a deadline shed
};

inline constexpr size_t kNumSpanKinds = 9;

constexpr const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kNetWire:
      return "net_wire";
    case SpanKind::kStationWait:
      return "station_wait";
    case SpanKind::kMemAccess:
      return "mem_access";
    case SpanKind::kDmaTlp:
      return "dma_tlp";
    case SpanKind::kNicDramAccess:
      return "nic_dram";
    case SpanKind::kReplShip:
      return "repl_ship";
    case SpanKind::kRetransmit:
      return "retransmit";
    case SpanKind::kBusyRetry:
      return "busy_retry";
    case SpanKind::kDeadlineWait:
      return "deadline_wait";
  }
  return "unknown_span";
}

// LoadDispatcher route codes carried in kMemAccess span details.
inline constexpr uint64_t kRoutePcie = 0;
inline constexpr uint64_t kRouteCacheHit = 1;
inline constexpr uint64_t kRouteCacheMiss = 2;
inline constexpr uint64_t kRouteEccDemotion = 3;

struct TraceSpan {
  SpanKind kind = SpanKind::kNetWire;
  SimTime start = 0;
  SimTime end = 0;
  uint64_t detail = 0;
};

// Rounds picoseconds to the nearest nanosecond (histograms store ns).
constexpr uint64_t PsToNs(SimTime ps) {
  return (ps + kNanosecond / 2) / kNanosecond;
}

struct OpTrace {
  static constexpr SimTime kAbsent = ~SimTime{0};

  uint64_t id = 0;          // (first wire sequence << 16) | op index
  Opcode opcode = Opcode::kGet;
  uint64_t sequence = 0;    // wire sequence of the first transmission
  uint32_t op_index = 0;    // position within that packet
  uint32_t attempts = 0;    // wire transmissions (>1 means retransmitted)
  ResultCode result = ResultCode::kOk;
  std::array<SimTime, kNumTracePoints> points;
  std::vector<TraceSpan> spans;

  OpTrace() { points.fill(kAbsent); }

  bool Has(TracePoint point) const {
    return points[static_cast<size_t>(point)] != kAbsent;
  }
  SimTime At(TracePoint point) const {
    return points[static_cast<size_t>(point)];
  }
  // Picoseconds from client send to client receive; 0 until both are stamped.
  SimTime EndToEndPs() const {
    return (Has(TracePoint::kClientSend) && Has(TracePoint::kClientReceive))
               ? At(TracePoint::kClientReceive) - At(TracePoint::kClientSend)
               : 0;
  }
};

// Serializes one trace as a JSON object (points keyed by name, spans as
// typed intervals). Deterministic: field order is fixed, absent points are
// omitted.
void AppendTraceJson(const OpTrace& trace, JsonWriter& json);

// Per-opcode, per-stage latency histograms (nanoseconds) fed by completed
// traces — the Fig-17-style "where the microsecond goes" aggregation.
class LatencyBreakdown {
 public:
  static constexpr size_t kNumOpcodes = 8;

  LatencyBreakdown() = default;
  LatencyBreakdown(const LatencyBreakdown&) = delete;
  LatencyBreakdown& operator=(const LatencyBreakdown&) = delete;

  void Record(const OpTrace& trace);
  void Reset();

  // Histogram of the stage ending at `point` for `opcode` (ns).
  const LatencyHistogram& Stage(Opcode opcode, TracePoint point) const;
  const LatencyHistogram& EndToEnd(Opcode opcode) const;
  uint64_t recorded() const { return recorded_; }

  // Registers kvd_trace_stage_ns{opcode,stage} and kvd_trace_e2e_ns{opcode}
  // histograms. `this` must outlive the registry.
  void RegisterMetrics(MetricRegistry& registry) const;

 private:
  std::array<std::array<LatencyHistogram, kNumTracePoints>, kNumOpcodes> stages_;
  std::array<LatencyHistogram, kNumOpcodes> e2e_;
  uint64_t recorded_ = 0;
};

// Renderers for the breakdown: a printable table (stages as rows, opcodes
// with data as columns, mean ns per cell) and a JSON export.
struct LatencyBreakdownReport {
  static std::string Table(const LatencyBreakdown& breakdown);
  // Appends an array value: one object per opcode with data.
  static void AppendJson(const LatencyBreakdown& breakdown, JsonWriter& json);
  // {"breakdown":[...]}
  static std::string ToJson(const LatencyBreakdown& breakdown);
};

// Service-level objective monitor: tumbling simulated-time windows of
// end-to-end latency, evaluated against configurable p50/p99 targets.
struct SloConfig {
  SimTime window = kMillisecond;  // tumbling window length (simulated)
  uint64_t p50_target_ns = 0;     // 0 disables the p50 objective
  uint64_t p99_target_ns = 0;     // 0 disables the p99 objective
};

class SloMonitor {
 public:
  explicit SloMonitor(Simulator& sim) : sim_(sim) {}
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void Configure(const SloConfig& config) { config_ = config; }
  const SloConfig& config() const { return config_; }

  // Called on breach with a one-line description (feeds the flight recorder).
  void set_on_breach(std::function<void(const std::string&)> fn) {
    on_breach_ = std::move(fn);
  }

  void Record(uint64_t e2e_ns);
  // Evaluates the currently open window (end-of-run flush).
  void Flush();

  uint64_t windows_evaluated() const { return windows_evaluated_; }
  uint64_t p50_breaches() const { return p50_breaches_; }
  uint64_t p99_breaches() const { return p99_breaches_; }
  double last_p50_ns() const { return last_p50_ns_; }
  double last_p99_ns() const { return last_p99_ns_; }

  // kvd_slo_* counters and last-window gauges.
  void RegisterMetrics(MetricRegistry& registry);

 private:
  void RollTo(SimTime now);
  void Evaluate();

  Simulator& sim_;
  SloConfig config_;
  LatencyHistogram window_;
  SimTime window_start_ = 0;
  uint64_t windows_evaluated_ = 0;
  uint64_t p50_breaches_ = 0;
  uint64_t p99_breaches_ = 0;
  double last_p50_ns_ = 0;
  double last_p99_ns_ = 0;
  std::function<void(const std::string&)> on_breach_;
};

// The tracer proper: owns live traces, hands out handles, routes completed
// traces to the breakdown, the SLO monitor, and the flight recorder.
class RequestTracer {
 public:
  explicit RequestTracer(Simulator& sim) : sim_(sim) {}
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void SetBreakdown(LatencyBreakdown* breakdown) { breakdown_ = breakdown; }
  void SetSloMonitor(SloMonitor* slo) { slo_ = slo; }
  // Invoked with every completed trace (the flight recorder's ring feed).
  void set_on_complete(std::function<void(const OpTrace&)> fn) {
    on_complete_ = std::move(fn);
  }

  // Creates a live trace and stamps kClientSend now. Returns the handle, or
  // 0 when tracing is disabled or the live table is full.
  uint64_t Start(Opcode opcode, uint64_t sequence, uint32_t op_index);

  // Stamps `point` at the current simulated time. First write wins, so
  // retransmissions and duplicate deliveries cannot move a checkpoint.
  void Point(uint64_t handle, TracePoint point);

  // Records a typed span [start, end] (simulated picoseconds).
  void Span(uint64_t handle, SpanKind kind, SimTime start, SimTime end,
            uint64_t detail = 0);

  // Counts one wire transmission attempt.
  void CountAttempt(uint64_t handle);

  // Stamps kClientReceive (if absent), records the result, feeds the
  // consumers, and retires the live trace.
  void Finish(uint64_t handle, ResultCode result);

  // Drops a live trace without recording (fatal client-side errors).
  void Abandon(uint64_t handle);

  // Client side: associates a wire sequence with the handles of the ops it
  // carries (in payload order). Re-registering under a new sequence is how
  // busy-retries keep their identity across re-sends.
  void RegisterPacket(uint64_t sequence, const std::vector<uint64_t>& handles);

  // Server side: handle of op `op_index` in the packet with `sequence`, or 0.
  // Non-consuming, so redirects and retransmissions resolve repeatedly.
  uint64_t LookupOp(uint64_t sequence, size_t op_index) const;

  const OpTrace* Live(uint64_t handle) const;
  // Live traces in ascending handle order (deterministic).
  std::vector<const OpTrace*> LiveTraces() const;

  uint64_t started() const { return started_; }
  uint64_t finished() const { return finished_; }
  uint64_t dropped() const { return dropped_; }

  // kvd_trace_started/finished/dropped counters.
  void RegisterMetrics(MetricRegistry& registry);

 private:
  // Bounds keep a runaway workload from exhausting memory; overflows count
  // as drops rather than aborting the run.
  static constexpr size_t kMaxLive = 1u << 16;
  static constexpr size_t kMaxSpansPerOp = 4096;
  static constexpr size_t kMaxPackets = 8192;

  Simulator& sim_;
  bool enabled_ = false;
  uint64_t started_ = 0;
  uint64_t finished_ = 0;
  uint64_t dropped_ = 0;
  std::map<uint64_t, OpTrace> live_;
  std::map<uint64_t, std::vector<uint64_t>> packet_ops_;
  LatencyBreakdown* breakdown_ = nullptr;
  SloMonitor* slo_ = nullptr;
  std::function<void(const OpTrace&)> on_complete_;
};

}  // namespace kvd

#endif  // SRC_OBS_REQUEST_TRACE_H_
