#include "src/obs/request_trace.h"

#include <algorithm>
#include <cstdio>

#include "src/common/assert.h"
#include "src/obs/json_writer.h"

namespace kvd {

void AppendTraceJson(const OpTrace& trace, JsonWriter& json) {
  json.BeginObject();
  json.Field("id", trace.id);
  json.Field("opcode", std::string_view(OpcodeName(trace.opcode)));
  json.Field("sequence", trace.sequence);
  json.Field("op_index", static_cast<uint64_t>(trace.op_index));
  json.Field("attempts", static_cast<uint64_t>(trace.attempts));
  json.Field("result", std::string_view(ResultCodeName(trace.result)));
  json.Key("points").BeginObject();
  for (size_t i = 0; i < kNumTracePoints; i++) {
    if (trace.points[i] == OpTrace::kAbsent) {
      continue;
    }
    json.Field(TracePointName(static_cast<TracePoint>(i)), trace.points[i]);
  }
  json.EndObject();
  json.Key("spans").BeginArray();
  for (const TraceSpan& span : trace.spans) {
    json.BeginObject();
    json.Field("kind", std::string_view(SpanKindName(span.kind)));
    json.Field("start_ps", span.start);
    json.Field("end_ps", span.end);
    json.Field("detail", span.detail);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

// ---------------------------------------------------------------------------
// LatencyBreakdown

void LatencyBreakdown::Record(const OpTrace& trace) {
  const size_t op = static_cast<size_t>(trace.opcode);
  if (op >= kNumOpcodes) {
    return;
  }
  SimTime prev = OpTrace::kAbsent;
  for (size_t i = 0; i < kNumTracePoints; i++) {
    const SimTime at = trace.points[i];
    if (at == OpTrace::kAbsent) {
      continue;
    }
    if (prev != OpTrace::kAbsent) {
      KVD_DCHECK(at >= prev);
      stages_[op][i].Add(PsToNs(at - prev));
    }
    prev = at;
  }
  if (trace.Has(TracePoint::kClientSend) &&
      trace.Has(TracePoint::kClientReceive)) {
    e2e_[op].Add(PsToNs(trace.EndToEndPs()));
    recorded_++;
  }
}

void LatencyBreakdown::Reset() {
  for (auto& per_opcode : stages_) {
    for (LatencyHistogram& hist : per_opcode) {
      hist.Reset();
    }
  }
  for (LatencyHistogram& hist : e2e_) {
    hist.Reset();
  }
  recorded_ = 0;
}

const LatencyHistogram& LatencyBreakdown::Stage(Opcode opcode,
                                                TracePoint point) const {
  return stages_[static_cast<size_t>(opcode)][static_cast<size_t>(point)];
}

const LatencyHistogram& LatencyBreakdown::EndToEnd(Opcode opcode) const {
  return e2e_[static_cast<size_t>(opcode)];
}

void LatencyBreakdown::RegisterMetrics(MetricRegistry& registry) const {
  for (size_t op = 0; op < kNumOpcodes; op++) {
    const char* opcode = OpcodeName(static_cast<Opcode>(op));
    for (size_t point = 1; point < kNumTracePoints; point++) {
      const LatencyHistogram* hist = &stages_[op][point];
      registry.RegisterHistogram(
          "kvd_trace_stage_ns", "per-stage latency from request traces",
          {{"opcode", opcode}, {"stage", StageName(static_cast<TracePoint>(point))}},
          [hist] { return *hist; });
    }
    const LatencyHistogram* e2e = &e2e_[op];
    registry.RegisterHistogram("kvd_trace_e2e_ns",
                               "end-to-end latency from request traces",
                               {{"opcode", opcode}}, [e2e] { return *e2e; });
  }
}

// ---------------------------------------------------------------------------
// LatencyBreakdownReport

namespace {

// Opcodes that completed at least one traced op, in enum order.
std::vector<size_t> OpcodesWithData(const LatencyBreakdown& breakdown) {
  std::vector<size_t> ops;
  for (size_t op = 0; op < LatencyBreakdown::kNumOpcodes; op++) {
    if (breakdown.EndToEnd(static_cast<Opcode>(op)).count() > 0) {
      ops.push_back(op);
    }
  }
  return ops;
}

double StageSumMeanNs(const LatencyBreakdown& breakdown, size_t op) {
  double sum = 0;
  for (size_t point = 1; point < kNumTracePoints; point++) {
    sum += breakdown
               .Stage(static_cast<Opcode>(op), static_cast<TracePoint>(point))
               .mean();
  }
  return sum;
}

}  // namespace

std::string LatencyBreakdownReport::Table(const LatencyBreakdown& breakdown) {
  const std::vector<size_t> ops = OpcodesWithData(breakdown);
  if (ops.empty()) {
    return "latency breakdown: no traced operations completed\n";
  }
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-14s", "stage");
  out += buf;
  for (const size_t op : ops) {
    std::snprintf(buf, sizeof(buf), " %14s", OpcodeName(static_cast<Opcode>(op)));
    out += buf;
  }
  out += '\n';
  for (size_t point = 1; point < kNumTracePoints; point++) {
    bool any = false;
    for (const size_t op : ops) {
      if (breakdown
              .Stage(static_cast<Opcode>(op), static_cast<TracePoint>(point))
              .count() > 0) {
        any = true;
      }
    }
    if (!any) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%-14s",
                  StageName(static_cast<TracePoint>(point)));
    out += buf;
    for (const size_t op : ops) {
      const LatencyHistogram& hist =
          breakdown.Stage(static_cast<Opcode>(op), static_cast<TracePoint>(point));
      if (hist.count() > 0) {
        std::snprintf(buf, sizeof(buf), " %14.1f", hist.mean());
      } else {
        std::snprintf(buf, sizeof(buf), " %14s", "-");
      }
      out += buf;
    }
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "%-14s", "stage_sum_ns");
  out += buf;
  for (const size_t op : ops) {
    std::snprintf(buf, sizeof(buf), " %14.1f", StageSumMeanNs(breakdown, op));
    out += buf;
  }
  out += '\n';
  std::snprintf(buf, sizeof(buf), "%-14s", "e2e_ns");
  out += buf;
  for (const size_t op : ops) {
    std::snprintf(buf, sizeof(buf), " %14.1f",
                  breakdown.EndToEnd(static_cast<Opcode>(op)).mean());
    out += buf;
  }
  out += '\n';
  std::snprintf(buf, sizeof(buf), "%-14s", "count");
  out += buf;
  for (const size_t op : ops) {
    std::snprintf(buf, sizeof(buf), " %14llu",
                  static_cast<unsigned long long>(
                      breakdown.EndToEnd(static_cast<Opcode>(op)).count()));
    out += buf;
  }
  out += '\n';
  return out;
}

void LatencyBreakdownReport::AppendJson(const LatencyBreakdown& breakdown,
                                        JsonWriter& json) {
  json.BeginArray();
  for (const size_t op : OpcodesWithData(breakdown)) {
    const Opcode opcode = static_cast<Opcode>(op);
    const LatencyHistogram& e2e = breakdown.EndToEnd(opcode);
    json.BeginObject();
    json.Field("opcode", std::string_view(OpcodeName(opcode)));
    json.Field("count", e2e.count());
    json.Key("stages").BeginArray();
    for (size_t point = 1; point < kNumTracePoints; point++) {
      const LatencyHistogram& hist =
          breakdown.Stage(opcode, static_cast<TracePoint>(point));
      if (hist.count() == 0) {
        continue;
      }
      json.BeginObject();
      json.Field("stage",
                 std::string_view(StageName(static_cast<TracePoint>(point))));
      json.Field("count", hist.count());
      json.Field("mean_ns", hist.mean());
      json.Field("p50_ns", hist.Percentile(0.5));
      json.Field("p99_ns", hist.Percentile(0.99));
      json.EndObject();
    }
    json.EndArray();
    json.Field("stage_sum_mean_ns", StageSumMeanNs(breakdown, op));
    json.Key("e2e").BeginObject();
    json.Field("mean_ns", e2e.mean());
    json.Field("p50_ns", e2e.Percentile(0.5));
    json.Field("p99_ns", e2e.Percentile(0.99));
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
}

std::string LatencyBreakdownReport::ToJson(const LatencyBreakdown& breakdown) {
  JsonWriter json;
  json.BeginObject();
  json.Key("breakdown");
  AppendJson(breakdown, json);
  json.EndObject();
  return json.TakeString();
}

// ---------------------------------------------------------------------------
// SloMonitor

void SloMonitor::Record(uint64_t e2e_ns) {
  if (config_.window > 0) {
    RollTo(sim_.Now());
  }
  window_.Add(e2e_ns);
}

void SloMonitor::Flush() {
  if (window_.count() > 0) {
    Evaluate();
    window_.Reset();
  }
}

void SloMonitor::RollTo(SimTime now) {
  if (now < window_start_ + config_.window) {
    return;
  }
  if (window_.count() > 0) {
    Evaluate();
    window_.Reset();
  }
  // Tumble straight to the window containing `now`; empty intermediate
  // windows are not evaluated.
  window_start_ = now - (now % config_.window);
}

void SloMonitor::Evaluate() {
  windows_evaluated_++;
  last_p50_ns_ = static_cast<double>(window_.Percentile(0.5));
  last_p99_ns_ = static_cast<double>(window_.Percentile(0.99));
  std::string breach;
  if (config_.p50_target_ns > 0 &&
      last_p50_ns_ > static_cast<double>(config_.p50_target_ns)) {
    p50_breaches_++;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "p50 %.0fns > target %lluns", last_p50_ns_,
                  static_cast<unsigned long long>(config_.p50_target_ns));
    breach = buf;
  }
  if (config_.p99_target_ns > 0 &&
      last_p99_ns_ > static_cast<double>(config_.p99_target_ns)) {
    p99_breaches_++;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "p99 %.0fns > target %lluns", last_p99_ns_,
                  static_cast<unsigned long long>(config_.p99_target_ns));
    if (!breach.empty()) {
      breach += "; ";
    }
    breach += buf;
  }
  if (!breach.empty() && on_breach_) {
    on_breach_(breach);
  }
}

void SloMonitor::RegisterMetrics(MetricRegistry& registry) {
  registry.RegisterCounter("kvd_slo_windows", "SLO windows evaluated", {},
                           &windows_evaluated_);
  registry.RegisterCounter("kvd_slo_p50_breaches", "windows over the p50 target",
                           {}, &p50_breaches_);
  registry.RegisterCounter("kvd_slo_p99_breaches", "windows over the p99 target",
                           {}, &p99_breaches_);
  registry.RegisterGauge("kvd_slo_last_p50_ns", "last evaluated window p50", {},
                         [this] { return last_p50_ns_; });
  registry.RegisterGauge("kvd_slo_last_p99_ns", "last evaluated window p99", {},
                         [this] { return last_p99_ns_; });
}

// ---------------------------------------------------------------------------
// RequestTracer

uint64_t RequestTracer::Start(Opcode opcode, uint64_t sequence,
                              uint32_t op_index) {
  if (!enabled_) {
    return 0;
  }
  if (live_.size() >= kMaxLive) {
    dropped_++;
    return 0;
  }
  const uint64_t handle = (sequence << 16) | (op_index & 0xffff);
  OpTrace& trace = live_[handle];
  trace.id = handle;
  trace.opcode = opcode;
  trace.sequence = sequence;
  trace.op_index = op_index;
  trace.points[static_cast<size_t>(TracePoint::kClientSend)] = sim_.Now();
  started_++;
  return handle;
}

void RequestTracer::Point(uint64_t handle, TracePoint point) {
  if (handle == 0) {
    return;
  }
  auto it = live_.find(handle);
  if (it == live_.end()) {
    return;
  }
  SimTime& at = it->second.points[static_cast<size_t>(point)];
  if (at == OpTrace::kAbsent) {
    at = sim_.Now();
  }
}

void RequestTracer::Span(uint64_t handle, SpanKind kind, SimTime start,
                         SimTime end, uint64_t detail) {
  if (handle == 0) {
    return;
  }
  auto it = live_.find(handle);
  if (it == live_.end()) {
    return;
  }
  if (it->second.spans.size() >= kMaxSpansPerOp) {
    dropped_++;
    return;
  }
  KVD_DCHECK(end >= start);
  it->second.spans.push_back({kind, start, end, detail});
}

void RequestTracer::CountAttempt(uint64_t handle) {
  if (handle == 0) {
    return;
  }
  auto it = live_.find(handle);
  if (it != live_.end()) {
    it->second.attempts++;
  }
}

void RequestTracer::Finish(uint64_t handle, ResultCode result) {
  if (handle == 0) {
    return;
  }
  auto it = live_.find(handle);
  if (it == live_.end()) {
    return;
  }
  OpTrace& trace = it->second;
  trace.result = result;
  SimTime& received = trace.points[static_cast<size_t>(TracePoint::kClientReceive)];
  if (received == OpTrace::kAbsent) {
    received = sim_.Now();
  }
  if (breakdown_ != nullptr) {
    breakdown_->Record(trace);
  }
  if (slo_ != nullptr && trace.Has(TracePoint::kClientSend)) {
    slo_->Record(PsToNs(trace.EndToEndPs()));
  }
  if (on_complete_) {
    on_complete_(trace);
  }
  finished_++;
  live_.erase(it);
}

void RequestTracer::Abandon(uint64_t handle) {
  if (handle == 0) {
    return;
  }
  live_.erase(handle);
}

void RequestTracer::RegisterPacket(uint64_t sequence,
                                   const std::vector<uint64_t>& handles) {
  if (!enabled_) {
    return;
  }
  bool any = false;
  for (const uint64_t handle : handles) {
    if (handle != 0) {
      any = true;
      break;
    }
  }
  if (!any) {
    return;
  }
  // Sequences grow monotonically per client, so begin() is the oldest entry.
  while (packet_ops_.size() >= kMaxPackets) {
    packet_ops_.erase(packet_ops_.begin());
  }
  packet_ops_[sequence] = handles;
}

uint64_t RequestTracer::LookupOp(uint64_t sequence, size_t op_index) const {
  auto it = packet_ops_.find(sequence);
  if (it == packet_ops_.end() || op_index >= it->second.size()) {
    return 0;
  }
  return it->second[op_index];
}

const OpTrace* RequestTracer::Live(uint64_t handle) const {
  auto it = live_.find(handle);
  return it == live_.end() ? nullptr : &it->second;
}

std::vector<const OpTrace*> RequestTracer::LiveTraces() const {
  std::vector<const OpTrace*> traces;
  traces.reserve(live_.size());
  for (const auto& [handle, trace] : live_) {
    traces.push_back(&trace);
  }
  return traces;
}

void RequestTracer::RegisterMetrics(MetricRegistry& registry) {
  registry.RegisterCounter("kvd_trace_started", "request traces started", {},
                           &started_);
  registry.RegisterCounter("kvd_trace_finished", "request traces completed", {},
                           &finished_);
  registry.RegisterCounter("kvd_trace_dropped",
                           "trace records dropped at capacity bounds", {},
                           &dropped_);
}

}  // namespace kvd
