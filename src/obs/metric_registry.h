// Unified metrics layer (the paper's evaluation, §5, reads internal rates —
// DMA-per-op, fast-path share, dispatcher hit rate — out of every subsystem;
// a production deployment needs the same numbers continuously).
//
// Components keep their existing stats structs as the backing store and
// register *reader* callbacks here, so registration changes no behavior and
// costs nothing on the hot path. The registry renders every registered metric
// in three forms:
//   - Prometheus text exposition (counters, gauges, summaries)
//   - a JSON snapshot (machine-readable, one record per metric)
//   - sorted plain text (the DiagnosticsReport body; golden-testable)
//
// Thread-free by design: the whole system runs under one discrete-event
// simulator, so reads are always quiescent.
#ifndef SRC_OBS_METRIC_REGISTRY_H_
#define SRC_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace kvd {

// Label set attached to a metric, e.g. {{"link", "0"}}. Order is preserved in
// exposition; equality is order-sensitive (register consistently).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricRegistry {
 public:
  using CounterFn = std::function<uint64_t()>;
  using GaugeFn = std::function<double()>;
  // Returns a snapshot of the histogram (cheap: fixed-size bucket array).
  using HistogramFn = std::function<LatencyHistogram()>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registration. Name+labels pairs must be unique (checked). The callback
  // must outlive the registry — in practice components and registry share the
  // owning KvDirectServer.
  void RegisterCounter(std::string name, std::string help, MetricLabels labels,
                       CounterFn fn);
  void RegisterGauge(std::string name, std::string help, MetricLabels labels,
                     GaugeFn fn);
  void RegisterHistogram(std::string name, std::string help, MetricLabels labels,
                         HistogramFn fn);

  // Convenience overloads reading a plain field of a live stats struct.
  void RegisterCounter(std::string name, std::string help, MetricLabels labels,
                       const uint64_t* field) {
    RegisterCounter(std::move(name), std::move(help), std::move(labels),
                    [field] { return *field; });
  }

  // Point lookups for tests and programmatic consumers.
  std::optional<uint64_t> CounterValue(std::string_view name,
                                       const MetricLabels& labels = {}) const;
  std::optional<double> GaugeValue(std::string_view name,
                                   const MetricLabels& labels = {}) const;
  std::optional<LatencyHistogram> HistogramValue(
      std::string_view name, const MetricLabels& labels = {}) const;

  size_t size() const { return metrics_.size(); }
  // Sorted, deduplicated metric names.
  std::vector<std::string> Names() const;

  // Every counter and gauge as `name{labels}`, sorted — the sampler's series
  // list — and their current values in the same order.
  std::vector<std::string> ScalarNames() const;
  std::vector<double> ScalarValues() const;

  // Prometheus text format, sorted by (name, labels), with # HELP / # TYPE
  // headers once per metric family. Histograms render as summaries with
  // quantile="0.5|0.95|0.99" series plus _sum and _count.
  std::string PrometheusText() const;

  // {"metrics":[{"name":...,"type":...,"labels":{...},...}]} sorted the same
  // way. Counters carry "value"; gauges "value"; histograms count/mean/min/
  // max/p50/p95/p99.
  std::string ToJson() const;

  // One sorted `name{labels} value` line per metric; histograms render their
  // one-line Summary(). Deterministic — DiagnosticsReport builds on this.
  std::string PlainText() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    std::string help;
    MetricLabels labels;
    std::string rendered_labels;  // cached `{k="v",...}` or empty
    Kind kind;
    CounterFn counter;
    GaugeFn gauge;
    HistogramFn histogram;
  };

  void Add(Metric metric);
  const Metric* Find(std::string_view name, const MetricLabels& labels) const;
  // Indices of metrics_ sorted by (name, rendered labels).
  std::vector<size_t> SortedOrder() const;

  std::vector<Metric> metrics_;
};

// Renders labels as `{k="v",k2="v2"}`, empty string for no labels.
std::string RenderLabels(const MetricLabels& labels);

}  // namespace kvd

#endif  // SRC_OBS_METRIC_REGISTRY_H_
