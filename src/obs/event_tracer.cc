#include "src/obs/event_tracer.h"

#include <cstdio>
#include <map>

#include "src/common/assert.h"
#include "src/obs/json_writer.h"

namespace kvd {

void EventTracer::Record(TraceEvent event) {
  if (events_.size() >= max_events_) {
    dropped_++;
    return;
  }
  events_.push_back(std::move(event));
}

void EventTracer::Instant(std::string category, std::string name, Args args) {
  if (!enabled_) {
    return;
  }
  Record({'i', sim_.Now(), 0, std::move(category), std::move(name),
          std::move(args)});
}

void EventTracer::Complete(std::string category, std::string name, SimTime start,
                           SimTime end, Args args) {
  if (!enabled_) {
    return;
  }
  KVD_DCHECK(end >= start);
  Record({'X', start, end - start, std::move(category), std::move(name),
          std::move(args)});
}

void EventTracer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string EventTracer::ToChromeTraceJson() const {
  // One track (tid) per category, numbered in first-appearance order; named
  // via thread_name metadata events so Perfetto shows readable lanes.
  std::map<std::string, int> track_of;
  for (const TraceEvent& e : events_) {
    track_of.emplace(e.category, 0);
  }
  int next_track = 1;
  for (auto& [category, track] : track_of) {
    track = next_track++;
  }

  JsonWriter json;
  json.BeginObject().Key("traceEvents").BeginArray();
  for (const auto& [category, track] : track_of) {
    json.BeginObject();
    json.Field("name", std::string_view("thread_name"));
    json.Field("ph", std::string_view("M"));
    json.Field("pid", uint64_t{0});
    json.Field("tid", static_cast<uint64_t>(track));
    json.Key("args").BeginObject().Field("name", std::string_view(category));
    json.EndObject().EndObject();
  }
  constexpr double kPicosPerMicro = 1e6;
  for (const TraceEvent& e : events_) {
    json.BeginObject();
    json.Field("name", std::string_view(e.name));
    json.Field("cat", std::string_view(e.category));
    char phase[2] = {e.phase, '\0'};
    json.Field("ph", std::string_view(phase));
    json.Field("ts", static_cast<double>(e.start) / kPicosPerMicro);
    if (e.phase == 'X') {
      json.Field("dur", static_cast<double>(e.duration) / kPicosPerMicro);
    }
    if (e.phase == 'i') {
      json.Field("s", std::string_view("t"));  // thread-scoped instant
    }
    json.Field("pid", uint64_t{0});
    json.Field("tid", static_cast<uint64_t>(track_of.at(e.category)));
    if (!e.args.empty()) {
      json.Key("args").BeginObject();
      for (const auto& [key, value] : e.args) {
        json.Field(key, value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Field("displayTimeUnit", std::string_view("ns"));
  json.Key("metadata").BeginObject();
  json.Field("dropped_events", dropped_);
  if (dropped_ > 0) {
    json.Field("warning",
               std::string_view("event buffer overflowed; trailing events "
                                "were dropped"));
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

Status EventTracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::Ok();
}

}  // namespace kvd
