#include "src/obs/metric_registry.h"

#include <algorithm>
#include <cstdio>

#include "src/common/assert.h"
#include "src/obs/json_writer.h"

namespace kvd {
namespace {

const char* KindName(bool counter, bool gauge) {
  return counter ? "counter" : gauge ? "gauge" : "histogram";
}

std::string FormatGauge(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); i++) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

void MetricRegistry::Add(Metric metric) {
  metric.rendered_labels = RenderLabels(metric.labels);
  KVD_CHECK_MSG(Find(metric.name, metric.labels) == nullptr,
                "duplicate metric registration");
  metrics_.push_back(std::move(metric));
}

void MetricRegistry::RegisterCounter(std::string name, std::string help,
                                     MetricLabels labels, CounterFn fn) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.kind = Kind::kCounter;
  m.counter = std::move(fn);
  Add(std::move(m));
}

void MetricRegistry::RegisterGauge(std::string name, std::string help,
                                   MetricLabels labels, GaugeFn fn) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.kind = Kind::kGauge;
  m.gauge = std::move(fn);
  Add(std::move(m));
}

void MetricRegistry::RegisterHistogram(std::string name, std::string help,
                                       MetricLabels labels, HistogramFn fn) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.kind = Kind::kHistogram;
  m.histogram = std::move(fn);
  Add(std::move(m));
}

const MetricRegistry::Metric* MetricRegistry::Find(
    std::string_view name, const MetricLabels& labels) const {
  for (const Metric& m : metrics_) {
    if (m.name == name && m.labels == labels) {
      return &m;
    }
  }
  return nullptr;
}

std::optional<uint64_t> MetricRegistry::CounterValue(
    std::string_view name, const MetricLabels& labels) const {
  const Metric* m = Find(name, labels);
  if (m == nullptr || m->kind != Kind::kCounter) {
    return std::nullopt;
  }
  return m->counter();
}

std::optional<double> MetricRegistry::GaugeValue(std::string_view name,
                                                 const MetricLabels& labels) const {
  const Metric* m = Find(name, labels);
  if (m == nullptr || m->kind != Kind::kGauge) {
    return std::nullopt;
  }
  return m->gauge();
}

std::optional<LatencyHistogram> MetricRegistry::HistogramValue(
    std::string_view name, const MetricLabels& labels) const {
  const Metric* m = Find(name, labels);
  if (m == nullptr || m->kind != Kind::kHistogram) {
    return std::nullopt;
  }
  return m->histogram();
}

std::vector<size_t> MetricRegistry::SortedOrder() const {
  std::vector<size_t> order(metrics_.size());
  for (size_t i = 0; i < order.size(); i++) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (metrics_[a].name != metrics_[b].name) {
      return metrics_[a].name < metrics_[b].name;
    }
    return metrics_[a].rendered_labels < metrics_[b].rendered_labels;
  });
  return order;
}

std::vector<std::string> MetricRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const size_t i : SortedOrder()) {
    if (names.empty() || names.back() != metrics_[i].name) {
      names.push_back(metrics_[i].name);
    }
  }
  return names;
}

std::vector<std::string> MetricRegistry::ScalarNames() const {
  std::vector<std::string> names;
  for (const size_t i : SortedOrder()) {
    const Metric& m = metrics_[i];
    if (m.kind != Kind::kHistogram) {
      names.push_back(m.name + m.rendered_labels);
    }
  }
  return names;
}

std::vector<double> MetricRegistry::ScalarValues() const {
  std::vector<double> values;
  for (const size_t i : SortedOrder()) {
    const Metric& m = metrics_[i];
    if (m.kind == Kind::kCounter) {
      values.push_back(static_cast<double>(m.counter()));
    } else if (m.kind == Kind::kGauge) {
      values.push_back(m.gauge());
    }
  }
  return values;
}

std::string MetricRegistry::PrometheusText() const {
  std::string out;
  std::string last_family;
  for (const size_t i : SortedOrder()) {
    const Metric& m = metrics_[i];
    if (m.name != last_family) {
      last_family = m.name;
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " ";
      out += m.kind == Kind::kCounter   ? "counter"
             : m.kind == Kind::kGauge ? "gauge"
                                      : "summary";
      out += '\n';
    }
    switch (m.kind) {
      case Kind::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(m.counter()));
        out += m.name + m.rendered_labels + " " + buf + "\n";
        break;
      }
      case Kind::kGauge: {
        out += m.name + m.rendered_labels + " " + FormatGauge(m.gauge()) + "\n";
        break;
      }
      case Kind::kHistogram: {
        const LatencyHistogram h = m.histogram();
        for (const double q : {0.5, 0.95, 0.99}) {
          MetricLabels with_q = m.labels;
          char qbuf[16];
          std::snprintf(qbuf, sizeof(qbuf), "%g", q);
          with_q.emplace_back("quantile", qbuf);
          char vbuf[32];
          std::snprintf(vbuf, sizeof(vbuf), "%llu",
                        static_cast<unsigned long long>(h.Percentile(q)));
          out += m.name + RenderLabels(with_q) + " " + vbuf + "\n";
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f",
                      h.mean() * static_cast<double>(h.count()));
        out += m.name + "_sum" + m.rendered_labels + " " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(h.count()));
        out += m.name + "_count" + m.rendered_labels + " " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  JsonWriter json;
  json.BeginObject().Key("metrics").BeginArray();
  for (const size_t i : SortedOrder()) {
    const Metric& m = metrics_[i];
    json.BeginObject();
    json.Field("name", m.name);
    json.Field("type", std::string_view(KindName(m.kind == Kind::kCounter,
                                                 m.kind == Kind::kGauge)));
    json.Key("labels").BeginObject();
    for (const auto& [key, value] : m.labels) {
      json.Field(key, std::string_view(value));
    }
    json.EndObject();
    switch (m.kind) {
      case Kind::kCounter:
        json.Field("value", m.counter());
        break;
      case Kind::kGauge:
        json.Field("value", m.gauge());
        break;
      case Kind::kHistogram: {
        const LatencyHistogram h = m.histogram();
        json.Field("count", h.count());
        json.Field("mean", h.mean());
        json.Field("min", h.min());
        json.Field("max", h.max());
        json.Field("p50", h.Percentile(0.5));
        json.Field("p95", h.Percentile(0.95));
        json.Field("p99", h.Percentile(0.99));
        break;
      }
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

std::string MetricRegistry::PlainText() const {
  std::string out;
  for (const size_t i : SortedOrder()) {
    const Metric& m = metrics_[i];
    out += m.name + m.rendered_labels + " ";
    switch (m.kind) {
      case Kind::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(m.counter()));
        out += buf;
        break;
      }
      case Kind::kGauge:
        out += FormatGauge(m.gauge());
        break;
      case Kind::kHistogram:
        out += m.histogram().Summary();
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace kvd
