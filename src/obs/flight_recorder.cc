#include "src/obs/flight_recorder.h"

#include <cstdlib>
#include <string>

#include "src/obs/json_writer.h"

namespace kvd {

void FlightRecorder::OnTraceComplete(const OpTrace& trace) {
  if (!enabled_ || config_.ring_capacity == 0) {
    return;
  }
  if (ring_.size() >= config_.ring_capacity) {
    ring_.pop_front();
  }
  ring_.push_back(trace);
}

bool FlightRecorder::Trigger(FlightTrigger trigger, std::string_view detail) {
  if (!enabled_) {
    return false;
  }
  triggers_seen_++;
  const size_t slot = static_cast<size_t>(trigger);
  if (config_.once_per_trigger && slot < fired_.size() && fired_[slot]) {
    return false;
  }
  if (dumps_.size() >= config_.max_dumps) {
    return false;
  }
  if (slot < fired_.size()) {
    fired_[slot] = true;
  }
  Dump dump;
  dump.trigger = trigger;
  dump.detail = std::string(detail);
  dump.sim_time = sim_.Now();
  dump.json = RenderDump(trigger, detail);
  dumps_.push_back(std::move(dump));
  dumps_taken_++;
  return true;
}

void FlightRecorder::Rearm() { fired_.fill(false); }

std::string FlightRecorder::RenderDump(FlightTrigger trigger,
                                       std::string_view detail) const {
  JsonWriter json;
  json.BeginObject();
  json.Key("flight_dump").BeginObject();
  json.Field("trigger", std::string_view(FlightTriggerName(trigger)));
  json.Field("detail", detail);
  json.Field("sim_time_ps", sim_.Now());
  json.Field("ordinal", static_cast<uint64_t>(dumps_.size()));
  json.Key("traces").BeginArray();
  for (const OpTrace& trace : ring_) {
    AppendTraceJson(trace, json);
  }
  json.EndArray();
  json.Key("live_traces").BeginArray();
  if (tracer_ != nullptr) {
    for (const OpTrace* trace : tracer_->LiveTraces()) {
      AppendTraceJson(*trace, json);
    }
  }
  json.EndArray();
  json.Key("metrics");
  if (registry_ != nullptr) {
    json.RawValue(registry_->ToJson());
  } else {
    json.Null();
  }
  json.Key("events").BeginArray();
  if (events_ != nullptr) {
    const std::vector<TraceEvent>& events = events_->events();
    const size_t first = events.size() > config_.event_window
                             ? events.size() - config_.event_window
                             : 0;
    for (size_t i = first; i < events.size(); i++) {
      const TraceEvent& e = events[i];
      json.BeginObject();
      json.Field("name", std::string_view(e.name));
      json.Field("cat", std::string_view(e.category));
      char phase[2] = {e.phase, '\0'};
      json.Field("ph", std::string_view(phase));
      json.Field("start_ps", e.start);
      if (e.phase == 'X') {
        json.Field("dur_ps", e.duration);
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("metadata").BeginObject();
  json.Field("ring_capacity", static_cast<uint64_t>(config_.ring_capacity));
  if (tracer_ != nullptr) {
    json.Field("live_traces_at_trigger",
               static_cast<uint64_t>(tracer_->LiveTraces().size()));
    json.Field("dropped_trace_records", tracer_->dropped());
  }
  if (events_ != nullptr) {
    json.Field("dropped_events", events_->dropped());
    if (events_->dropped() > 0) {
      json.Field("warning",
                 std::string_view("event buffer overflowed; the event window "
                                  "is incomplete"));
    }
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

void FlightRecorder::RegisterMetrics(MetricRegistry& registry) {
  registry.RegisterCounter("kvd_flight_triggers",
                           "flight-recorder trigger events observed", {},
                           &triggers_seen_);
  registry.RegisterCounter("kvd_flight_dumps", "flight-recorder dumps taken",
                           {}, &dumps_taken_);
}

// ---------------------------------------------------------------------------
// ParseFlightDump — a small validating recursive-descent parser. It fully
// tokenizes the document (so truncation anywhere is an error), extracts the
// fields ParsedFlightDump needs, skips unknown keys, and enforces a hard
// bound on the total span count before allocating.

namespace {

class DumpParser {
 public:
  DumpParser(std::string_view in, ParsedFlightDump* out, size_t max_spans)
      : in_(in), out_(out), max_spans_(max_spans) {}

  Status Run() {
    SkipWs();
    if (!Consume('{')) {
      return Error("expected top-level object");
    }
    bool saw_dump = false;
    if (!ParseObjectBody([&](const std::string& key) {
          if (key == "flight_dump") {
            saw_dump = true;
            return ParseDumpBody();
          }
          return SkipValue(0);
        })) {
      return Error(error_.empty() ? "malformed object" : error_);
    }
    SkipWs();
    if (pos_ != in_.size()) {
      return Error("trailing bytes after document");
    }
    if (!saw_dump) {
      return Error("missing flight_dump object");
    }
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("flight dump: " + msg);
  }
  bool Fail(std::string msg) {
    if (error_.empty()) {
      error_ = std::move(msg);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      pos_++;
    }
  }

  bool Consume(char expected) {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != expected) {
      return false;
    }
    pos_++;
    return true;
  }

  bool AtChar(char c) {
    SkipWs();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool ParseString(std::string* s) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    s->clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= in_.size()) {
          break;
        }
        const char esc = in_[pos_++];
        switch (esc) {
          case '"': *s += '"'; break;
          case '\\': *s += '\\'; break;
          case '/': *s += '/'; break;
          case 'n': *s += '\n'; break;
          case 'r': *s += '\r'; break;
          case 't': *s += '\t'; break;
          case 'b': *s += '\b'; break;
          case 'f': *s += '\f'; break;
          case 'u': {
            if (pos_ + 4 > in_.size()) {
              return Fail("truncated \\u escape");
            }
            // Decoded only far enough to round-trip our own ASCII output.
            char buf[5] = {in_[pos_], in_[pos_ + 1], in_[pos_ + 2],
                           in_[pos_ + 3], '\0'};
            pos_ += 4;
            const unsigned long code = std::strtoul(buf, nullptr, 16);
            *s += static_cast<char>(code < 0x80 ? code : '?');
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *s += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumberToken(std::string* token) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') {
      pos_++;
    }
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        pos_++;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("expected number");
    }
    *token = std::string(in_.substr(start, pos_ - start));
    return true;
  }

  bool ParseUint(uint64_t* v) {
    std::string token;
    if (!ParseNumberToken(&token)) {
      return false;
    }
    if (!token.empty() && token[0] == '-') {
      return Fail("expected non-negative integer");
    }
    *v = std::strtoull(token.c_str(), nullptr, 10);
    return true;
  }

  // `body(key)` parses the value for `key` (or skips it); called once per key.
  template <typename Fn>
  bool ParseObjectBody(Fn body) {
    if (Consume('}')) {
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) {
        return Fail("expected object key");
      }
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      if (!body(key)) {
        return false;
      }
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  template <typename Fn>
  bool ParseArrayBody(Fn element) {
    if (Consume(']')) {
      return true;
    }
    while (true) {
      if (!element()) {
        return false;
      }
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool SkipLiteral(std::string_view word) {
    if (in_.substr(pos_).substr(0, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool SkipValue(int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos_ >= in_.size()) {
      return Fail("truncated value");
    }
    const char c = in_[pos_];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{') {
      pos_++;
      return ParseObjectBody([&](const std::string&) {
        return SkipValue(depth + 1);
      });
    }
    if (c == '[') {
      pos_++;
      return ParseArrayBody([&] { return SkipValue(depth + 1); });
    }
    if (c == 't') {
      return SkipLiteral("true");
    }
    if (c == 'f') {
      return SkipLiteral("false");
    }
    if (c == 'n') {
      return SkipLiteral("null");
    }
    std::string ignored;
    return ParseNumberToken(&ignored);
  }

  bool ParseOpcodeName(const std::string& name, Opcode* opcode) {
    for (size_t i = 0; i < LatencyBreakdown::kNumOpcodes; i++) {
      if (name == OpcodeName(static_cast<Opcode>(i))) {
        *opcode = static_cast<Opcode>(i);
        return true;
      }
    }
    return Fail("unknown opcode '" + name + "'");
  }

  bool ParseResultName(const std::string& name, ResultCode* code) {
    for (uint8_t i = 0; i <= kMaxResultCodeByte; i++) {
      if (name == ResultCodeName(static_cast<ResultCode>(i))) {
        *code = static_cast<ResultCode>(i);
        return true;
      }
    }
    return Fail("unknown result code '" + name + "'");
  }

  bool ParsePoints(OpTrace* trace) {
    if (!Consume('{')) {
      return Fail("expected points object");
    }
    return ParseObjectBody([&](const std::string& key) {
      for (size_t i = 0; i < kNumTracePoints; i++) {
        if (key == TracePointName(static_cast<TracePoint>(i))) {
          return ParseUint(&trace->points[i]);
        }
      }
      return Fail("unknown trace point '" + key + "'");
    });
  }

  bool ParseSpan(OpTrace* trace) {
    if (!Consume('{')) {
      return Fail("expected span object");
    }
    if (++spans_seen_ > max_spans_) {
      return Fail("span count exceeds bound");
    }
    TraceSpan span;
    if (!ParseObjectBody([&](const std::string& key) {
          if (key == "kind") {
            std::string name;
            if (!ParseString(&name)) {
              return false;
            }
            for (size_t i = 0; i < kNumSpanKinds; i++) {
              if (name == SpanKindName(static_cast<SpanKind>(i))) {
                span.kind = static_cast<SpanKind>(i);
                return true;
              }
            }
            return Fail("unknown span kind '" + name + "'");
          }
          if (key == "start_ps") {
            return ParseUint(&span.start);
          }
          if (key == "end_ps") {
            return ParseUint(&span.end);
          }
          if (key == "detail") {
            return ParseUint(&span.detail);
          }
          return SkipValue(0);
        })) {
      return false;
    }
    trace->spans.push_back(span);
    return true;
  }

  bool ParseTrace(OpTrace* trace) {
    if (!Consume('{')) {
      return Fail("expected trace object");
    }
    return ParseObjectBody([&](const std::string& key) {
      if (key == "id") {
        return ParseUint(&trace->id);
      }
      if (key == "opcode") {
        std::string name;
        return ParseString(&name) && ParseOpcodeName(name, &trace->opcode);
      }
      if (key == "sequence") {
        return ParseUint(&trace->sequence);
      }
      if (key == "op_index") {
        uint64_t v = 0;
        if (!ParseUint(&v)) {
          return false;
        }
        trace->op_index = static_cast<uint32_t>(v);
        return true;
      }
      if (key == "attempts") {
        uint64_t v = 0;
        if (!ParseUint(&v)) {
          return false;
        }
        trace->attempts = static_cast<uint32_t>(v);
        return true;
      }
      if (key == "result") {
        std::string name;
        return ParseString(&name) && ParseResultName(name, &trace->result);
      }
      if (key == "points") {
        return ParsePoints(trace);
      }
      if (key == "spans") {
        if (!Consume('[')) {
          return Fail("expected spans array");
        }
        return ParseArrayBody([&] { return ParseSpan(trace); });
      }
      return SkipValue(0);
    });
  }

  bool ParseTraceList(std::vector<OpTrace>* list) {
    if (!Consume('[')) {
      return Fail("expected trace array");
    }
    return ParseArrayBody([&] {
      OpTrace trace;
      if (!ParseTrace(&trace)) {
        return false;
      }
      list->push_back(std::move(trace));
      return true;
    });
  }

  bool ParseDumpBody() {
    if (!Consume('{')) {
      return Fail("expected flight_dump object");
    }
    return ParseObjectBody([&](const std::string& key) {
      if (key == "trigger") {
        return ParseString(&out_->trigger);
      }
      if (key == "detail") {
        return ParseString(&out_->detail);
      }
      if (key == "sim_time_ps") {
        return ParseUint(&out_->sim_time);
      }
      if (key == "traces") {
        return ParseTraceList(&out_->traces);
      }
      if (key == "live_traces") {
        return ParseTraceList(&out_->live_traces);
      }
      return SkipValue(0);
    });
  }

  std::string_view in_;
  size_t pos_ = 0;
  ParsedFlightDump* out_;
  size_t max_spans_;
  uint64_t spans_seen_ = 0;
  std::string error_;

 public:
  uint64_t spans_seen() const { return spans_seen_; }
};

}  // namespace

Status ParseFlightDump(std::string_view json, ParsedFlightDump* out,
                       size_t max_spans) {
  *out = ParsedFlightDump();
  DumpParser parser(json, out, max_spans);
  Status status = parser.Run();
  if (!status.ok()) {
    *out = ParsedFlightDump();
    return status;
  }
  out->total_spans = parser.spans_seen();
  return Status::Ok();
}

}  // namespace kvd
