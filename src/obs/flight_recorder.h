// Postmortem flight recorder: a bounded ring of the most recently completed
// request traces that snapshots itself to deterministic JSON when something
// anomalous happens — a fault injection, an ECC demotion, a failover
// election, a burst of kBusy rejections, or an SLO breach.
//
// A dump captures the completed-trace ring, the still-live traces (the ops in
// flight at trigger time, span trees included), a metrics-registry snapshot,
// and a recent window of EventTracer events. Everything runs on the simulated
// clock, so same-seed runs produce bit-identical dumps — they double as
// regression artifacts.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/event_tracer.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/sim/simulator.h"

namespace kvd {

enum class FlightTrigger : uint8_t {
  kManual = 0,
  kFaultInjected,
  kEccDemotion,
  kFailover,
  kBusyBurst,
  kSloBreach,
  kShardCutover,  // cluster shard migration flipped ownership (src/cluster)
};

inline constexpr size_t kNumFlightTriggers = 7;

constexpr const char* FlightTriggerName(FlightTrigger trigger) {
  switch (trigger) {
    case FlightTrigger::kManual:
      return "manual";
    case FlightTrigger::kFaultInjected:
      return "fault_injected";
    case FlightTrigger::kEccDemotion:
      return "ecc_demotion";
    case FlightTrigger::kFailover:
      return "failover";
    case FlightTrigger::kBusyBurst:
      return "busy_burst";
    case FlightTrigger::kSloBreach:
      return "slo_breach";
    case FlightTrigger::kShardCutover:
      return "shard_cutover";
  }
  return "unknown_trigger";
}

struct FlightRecorderConfig {
  size_t ring_capacity = 64;   // completed op traces kept
  size_t event_window = 256;   // trailing EventTracer events per dump
  size_t max_dumps = 8;        // hard cap on dumps per run
  // Each trigger kind fires at most once until Rearm() — a cascading failure
  // produces one dump per root cause instead of one per symptom.
  bool once_per_trigger = true;
  // Fault injections fire the recorder only when opted in: chaos runs inject
  // thousands of faults by design, and a scripted-fault experiment wants its
  // single dump to come from the *consequence* (ECC demotion, failover), not
  // from the injection itself.
  bool trigger_on_fault_injection = false;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(Simulator& sim) : sim_(sim) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Configure(const FlightRecorderConfig& config) { config_ = config; }
  const FlightRecorderConfig& config() const { return config_; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Optional dump enrichments; all may be null.
  void SetRequestTracer(const RequestTracer* tracer) { tracer_ = tracer; }
  void SetMetricRegistry(const MetricRegistry* registry) { registry_ = registry; }
  void SetEventTracer(const EventTracer* events) { events_ = events; }

  // Ring feed — wire as the RequestTracer's on_complete callback.
  void OnTraceComplete(const OpTrace& trace);

  // Takes a dump unless suppressed (disabled, max_dumps reached, or this
  // trigger kind already fired under once_per_trigger). Returns whether a
  // dump was taken.
  bool Trigger(FlightTrigger trigger, std::string_view detail = "");

  // Clears the once-per-trigger latches (not the dumps already taken).
  void Rearm();

  struct Dump {
    FlightTrigger trigger = FlightTrigger::kManual;
    std::string detail;
    SimTime sim_time = 0;
    std::string json;
  };

  const std::vector<Dump>& dumps() const { return dumps_; }
  uint64_t triggers_seen() const { return triggers_seen_; }
  uint64_t dumps_taken() const { return dumps_taken_; }
  size_t ring_size() const { return ring_.size(); }

  // kvd_flight_triggers / kvd_flight_dumps counters.
  void RegisterMetrics(MetricRegistry& registry);

 private:
  std::string RenderDump(FlightTrigger trigger, std::string_view detail) const;

  Simulator& sim_;
  FlightRecorderConfig config_;
  bool enabled_ = false;
  const RequestTracer* tracer_ = nullptr;
  const MetricRegistry* registry_ = nullptr;
  const EventTracer* events_ = nullptr;
  std::deque<OpTrace> ring_;
  std::array<bool, kNumFlightTriggers> fired_{};
  std::vector<Dump> dumps_;
  uint64_t triggers_seen_ = 0;
  uint64_t dumps_taken_ = 0;
};

// Validated loader for flight-recorder dump JSON (the negative-test surface:
// a truncated file or a hostile span count must produce an error Status, not
// a crash or an unbounded allocation).
struct ParsedFlightDump {
  std::string trigger;
  std::string detail;
  SimTime sim_time = 0;
  std::vector<OpTrace> traces;       // completed ring, oldest first
  std::vector<OpTrace> live_traces;  // in flight at trigger time
  uint64_t total_spans = 0;
};

Status ParseFlightDump(std::string_view json, ParsedFlightDump* out,
                       size_t max_spans = 1u << 16);

}  // namespace kvd

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
