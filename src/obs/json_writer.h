// Minimal streaming JSON emitter shared by the metric registry's JSON
// exposition, the Chrome trace exporter, and the benchmarks' --json output.
// No external dependencies; the writer tracks nesting and inserts commas so
// callers cannot produce structurally invalid documents.
#ifndef SRC_OBS_JSON_WRITER_H_
#define SRC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kvd {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value; valid only directly inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  // Non-finite doubles (JSON has no NaN/Inf) are emitted as null.
  JsonWriter& Number(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Splices `raw` — which must already be a complete, valid JSON value — in
  // value position. Lets prerendered documents (a metrics snapshot) nest
  // inside a larger one without reparsing.
  JsonWriter& RawValue(std::string_view raw);

  // Shorthand for Key(k) followed by the value.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, uint64_t value);
  JsonWriter& Field(std::string_view key, double value);

  // The finished document; valid once every Begin has been End-ed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether it has items and
  // (objects) whether a key is pending.
  struct Frame {
    char kind;
    bool has_items = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

}  // namespace kvd

#endif  // SRC_OBS_JSON_WRITER_H_
