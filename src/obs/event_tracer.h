// Simulator event tracing with Chrome trace-event export.
//
// Hardware models record what happened on the simulated timeline — PCIe DMA
// issue/complete, NIC-DRAM channel occupancy, reservation-station
// admit/forward/retire, slab pool syncs, network packets — and the tracer
// serializes them as Chrome trace-event JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev. Each category gets its own track (tid), so the
// per-subsystem timelines line up vertically like a waveform viewer.
//
// Tracing is off by default: every hook checks `enabled()` first, so the
// instrumented hot paths pay one predictable branch when disabled. A bounded
// event buffer (drop-newest) keeps long simulations from exhausting memory.
#ifndef SRC_OBS_EVENT_TRACER_H_
#define SRC_OBS_EVENT_TRACER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace kvd {

struct TraceEvent {
  char phase;        // 'X' complete (start+duration), 'i' instant
  SimTime start;     // picoseconds of simulated time
  SimTime duration;  // 'X' only
  std::string category;
  std::string name;
  // Small numeric payload (bytes, slot, action code, ...).
  std::vector<std::pair<std::string, uint64_t>> args;
};

class EventTracer {
 public:
  using Args = std::vector<std::pair<std::string, uint64_t>>;

  explicit EventTracer(Simulator& sim, size_t max_events = 1u << 20)
      : sim_(sim), max_events_(max_events) {}
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Point event at the current simulated time.
  void Instant(std::string category, std::string name, Args args = {});

  // Interval event [start, end] on the simulated timeline (end >= start;
  // zero-length intervals are legal and render as slivers).
  void Complete(std::string category, std::string name, SimTime start,
                SimTime end, Args args = {});

  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear();

  // Chrome trace-event JSON object format:
  // {"traceEvents":[...],"displayTimeUnit":"ns"}. Timestamps are emitted in
  // microseconds (the format's unit), with sub-microsecond precision kept as
  // fractions.
  std::string ToChromeTraceJson() const;

  // Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  void Record(TraceEvent event);

  Simulator& sim_;
  size_t max_events_;
  bool enabled_ = false;
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace kvd

#endif  // SRC_OBS_EVENT_TRACER_H_
