// Simulated-time sampler over the metric registry.
//
// Snapshots every counter and gauge on a fixed cadence of *simulated* time by
// re-scheduling itself on the Simulator — the discrete-event analogue of a
// scrape loop. The result is a per-metric time series (e.g. dispatcher hit
// rate over the run, station occupancy ramping up) exportable as JSON.
//
// The sampler only re-arms while running and below max_samples, so a stopped
// or saturated sampler leaves the event queue drainable (RunUntilIdle safe
// after Stop(); one already-scheduled tick may still fire as a no-op).
#ifndef SRC_OBS_TIME_SERIES_SAMPLER_H_
#define SRC_OBS_TIME_SERIES_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metric_registry.h"
#include "src/sim/simulator.h"

namespace kvd {

struct SamplerConfig {
  SimTime interval = 100 * kMicrosecond;
  size_t max_samples = 100000;
};

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(Simulator& sim, const MetricRegistry& registry,
                    SamplerConfig config = {});
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Captures the series list (counters and gauges registered so far) and
  // schedules the first sample one interval from now.
  void Start();
  void Stop();
  bool running() const { return running_; }

  struct Sample {
    SimTime when;
    std::vector<double> values;  // parallel to series_names()
  };

  const std::vector<std::string>& series_names() const { return series_names_; }
  const std::vector<Sample>& samples() const { return samples_; }

  // {"interval_ps":...,"series":{"name":[[t_ps,value],...],...}}
  std::string ToJson() const;

 private:
  void Tick();

  Simulator& sim_;
  const MetricRegistry& registry_;
  SamplerConfig config_;
  bool running_ = false;
  std::vector<std::string> series_names_;  // name + rendered labels
  std::vector<Sample> samples_;
};

}  // namespace kvd

#endif  // SRC_OBS_TIME_SERIES_SAMPLER_H_
