#include "src/obs/time_series_sampler.h"

#include "src/common/assert.h"
#include "src/obs/json_writer.h"

namespace kvd {

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, const MetricRegistry& registry,
                                     SamplerConfig config)
    : sim_(sim), registry_(registry), config_(config) {
  KVD_CHECK(config.interval > 0);
}

void TimeSeriesSampler::Start() {
  KVD_CHECK_MSG(!running_, "sampler already running");
  series_names_ = registry_.ScalarNames();
  running_ = true;
  sim_.Schedule(config_.interval, [this] { Tick(); });
}

void TimeSeriesSampler::Stop() { running_ = false; }

void TimeSeriesSampler::Tick() {
  if (!running_ || samples_.size() >= config_.max_samples) {
    return;
  }
  samples_.push_back({sim_.Now(), registry_.ScalarValues()});
  // Metrics registered after Start() would desynchronize names and values.
  KVD_DCHECK(samples_.back().values.size() == series_names_.size());
  if (samples_.size() < config_.max_samples) {
    sim_.Schedule(config_.interval, [this] { Tick(); });
  }
}

std::string TimeSeriesSampler::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Field("interval_ps", static_cast<uint64_t>(config_.interval));
  json.Key("series").BeginObject();
  for (size_t s = 0; s < series_names_.size(); s++) {
    json.Key(series_names_[s]).BeginArray();
    for (const Sample& sample : samples_) {
      json.BeginArray()
          .Uint(static_cast<uint64_t>(sample.when))
          .Number(sample.values[s])
          .EndArray();
    }
    json.EndArray();
  }
  json.EndObject().EndObject();
  return json.TakeString();
}

}  // namespace kvd
