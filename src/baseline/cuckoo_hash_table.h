// Bucketized cuckoo hash table in the style of MemC3 (Fan et al., NSDI'13),
// used as a Figure 11 baseline.
//
// Following the paper's comparison setup (§5.1.1): keys are stored inline in
// the index and can be compared in parallel within a bucket; values live in
// dynamically allocated slabs. Every bucket is one 64-byte line with four
// 16-byte slots (key fingerprint + key bytes + slab pointer). Each key has
// two candidate buckets; inserts displace ("kick") existing keys along a
// cuckoo path when both are full.
//
// All memory is touched through AccessEngine so the benchmark measures real
// DMA-equivalent access counts per GET/PUT at any memory utilization.
#ifndef SRC_BASELINE_CUCKOO_HASH_TABLE_H_
#define SRC_BASELINE_CUCKOO_HASH_TABLE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/mem/access_engine.h"

namespace kvd {

struct CuckooConfig {
  uint64_t index_base = 0;
  uint64_t num_buckets = 0;     // must be a power of two
  uint32_t max_kick_depth = 250;  // displacement chain bound before failure
};

class CuckooHashTable {
 public:
  CuckooHashTable(AccessEngine& engine, Allocator& allocator,
                  const CuckooConfig& config);

  Status Get(std::span<const uint8_t> key, std::vector<uint8_t>& value_out);
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);

  uint64_t num_kvs() const { return num_kvs_; }
  uint64_t displacements() const { return displacements_; }

  static constexpr uint32_t kBucketBytes = 64;
  static constexpr uint32_t kSlotsPerBucket = 4;
  static constexpr uint32_t kSlotBytes = 16;
  // Slot layout: u8 valid, u8 key_len, 8 B key, 6 B slab pointer + length.
  static constexpr uint32_t kMaxKeyBytes = 8;

 private:
  struct Slot {
    bool valid = false;
    uint8_t key_len = 0;
    uint8_t key[kMaxKeyBytes] = {};
    uint64_t pointer = 0;  // slab address (32-bit) | value_len << 40
  };
  struct Bucket {
    Slot slots[kSlotsPerBucket];
  };

  Bucket ReadBucket(uint64_t index);
  void WriteBucket(uint64_t index, const Bucket& bucket);
  uint64_t Bucket1(std::span<const uint8_t> key) const;
  uint64_t Bucket2(std::span<const uint8_t> key) const;
  uint64_t AlternateBucket(uint64_t bucket, std::span<const uint8_t> key_bytes,
                           uint8_t key_len) const;
  static bool SlotMatches(const Slot& slot, std::span<const uint8_t> key);

  AccessEngine& engine_;
  Allocator& allocator_;
  CuckooConfig config_;
  Rng rng_;
  uint64_t num_kvs_ = 0;
  uint64_t displacements_ = 0;
};

}  // namespace kvd

#endif  // SRC_BASELINE_CUCKOO_HASH_TABLE_H_
