// Analytic throughput models for the systems KV-Direct compares against.
//
// These reproduce the paper's cited numbers rather than re-deriving them:
// §2.2 measures the CPU bounds on the authors' Xeon E5-2650 v2 testbed, and
// §5.1.3 / Table 3 cite published figures for the RDMA and CPU KVS baselines.
// Each model is a small closed-form calculation with the paper's constants as
// defaults, so Figure 13 and Table 3 regenerate from first principles and the
// constants stay visible and overridable.
#ifndef SRC_BASELINE_ANALYTIC_MODELS_H_
#define SRC_BASELINE_ANALYTIC_MODELS_H_

#include <algorithm>
#include <cstdint>

namespace kvd {

// CPU-based KVS (paper §2.2): a core interleaves ~100 ns of key comparison /
// hash computation (~500 instructions, larger than the 100-200 entry
// instruction window) with ~110 ns cache-miss memory accesses, 3-4 of which
// can be in flight per core.
struct CpuKvsModel {
  double random_access_ns = 110;    // 64 B random read, cache miss
  double loadstore_parallelism = 3.5;  // load-store units usable
  double computation_ns_per_op = 100;  // ~500 instructions of KV processing
  double accesses_per_op = 1.3;     // hash + value on a good hash table
  uint32_t cores = 16;              // 2 x 8-core E5-2650 v2

  // Paper measurement: 29.3 M random 64 B accesses/s/core.
  double RandomAccessMopsPerCore() const {
    return loadstore_parallelism / random_access_ns * 1e3;
  }
  // Paper measurement: 5.5 Mops/core when interleaved with computation —
  // the computation serializes with the (window-limited) memory accesses.
  double InterleavedMopsPerCore() const {
    const double memory_ns =
        accesses_per_op * random_access_ns / loadstore_parallelism;
    return 1e3 / (computation_ns_per_op + memory_ns * accesses_per_op);
  }
  // Paper measurement: 7.9 Mops/core with software batching/prefetching —
  // computation of several ops is clustered so accesses overlap it.
  double BatchedMopsPerCore() const {
    const double per_op_ns =
        std::max(computation_ns_per_op,
                 accesses_per_op * random_access_ns / loadstore_parallelism) *
        1.05;  // residual non-overlapped work
    return 1e3 / per_op_ns;
  }
  double BatchedMops() const { return BatchedMopsPerCore() * cores; }
};

// RDMA-based KVS baselines for Figure 13a (atomics throughput vs key count).
struct RdmaKvsModel {
  // One-sided RDMA atomics serialize per key at the NIC: the paper cites
  // 2.24 Mops single-key from [Kalia et al.]; internal PCIe RTT bounds the
  // aggregate across keys.
  double one_sided_per_key_mops = 2.24;
  double one_sided_total_cap_mops = 18;

  // Two-sided (RPC) atomics execute on a server core per key; commutative
  // fetch-and-add can spread across cores up to the message-rate ceiling.
  double two_sided_per_key_mops = 1.1;
  double two_sided_total_cap_mops = 78;

  double OneSidedAtomicsMops(uint64_t num_keys) const {
    return std::min(one_sided_per_key_mops * static_cast<double>(num_keys),
                    one_sided_total_cap_mops);
  }
  double TwoSidedAtomicsMops(uint64_t num_keys) const {
    return std::min(two_sided_per_key_mops * static_cast<double>(num_keys),
                    two_sided_total_cap_mops);
  }
};

// Published rows reproduced in Table 3 (throughput in Mops, power in watts).
struct PublishedSystem {
  const char* name;
  double throughput_mops;
  double power_watts;
  double tail_latency_us;

  double KopsPerWatt() const { return throughput_mops * 1e3 / power_watts; }
};

// The comparison set the paper tabulates (Table 3): CPU-bypass systems
// measure only the incremental power (parenthesized in the paper).
inline constexpr PublishedSystem kPublishedSystems[] = {
    {"Memcached", 1.5, 399, 95},
    {"MemC3", 4.3, 410, 53},
    {"RAMCloud", 6.0, 406, 15},
    {"MICA (24 cores)", 137, 438, 81},
    {"FaRM (one-sided)", 6.0, 45, 4.5},
    {"DrTM-KV", 115.7, 742, 3.4},
    {"HERD ('16)", 98.3, 683, 5},
};

}  // namespace kvd

#endif  // SRC_BASELINE_ANALYTIC_MODELS_H_
