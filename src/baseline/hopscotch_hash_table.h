// Associative hopscotch hash table in the style of FaRM (Dragojević et al.,
// NSDI'14), used as a Figure 11 baseline.
//
// Keys live inline in the index; values in slab-allocated memory (paper
// §5.1.1 comparison setup). Every key hashes to a home slot; the key is
// guaranteed to reside within the *neighborhood* of H consecutive slots
// starting there, so a GET is one contiguous index read (H x 16 B spans two
// 64-byte buckets for H = 8) plus one value read — constant-time lookups,
// which is why hopscotch GETs beat chaining at high utilization in
// Figure 11c. Inserts linear-probe for a free slot and then "hop" it
// backwards into the neighborhood by displacing keys whose own neighborhoods
// still cover the freed position — the write amplification that makes
// hopscotch PUTs expensive under load (Figure 11d).
//
// Simplification vs. FaRM: no overflow chaining — when no displacement
// sequence can bring the free slot home, the insert fails. This caps
// achievable utilization slightly below FaRM's but leaves the access-count
// curves (the quantity Figure 11 compares) intact; see DESIGN.md.
#ifndef SRC_BASELINE_HOPSCOTCH_HASH_TABLE_H_
#define SRC_BASELINE_HOPSCOTCH_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/common/status.h"
#include "src/mem/access_engine.h"

namespace kvd {

struct HopscotchConfig {
  uint64_t index_base = 0;
  uint64_t num_slots = 0;       // multiple of kSlotsPerBucket
  uint32_t neighborhood = 8;    // H consecutive slots
  uint32_t max_probe_slots = 512;  // linear-probe bound before failure
};

class HopscotchHashTable {
 public:
  HopscotchHashTable(AccessEngine& engine, Allocator& allocator,
                     const HopscotchConfig& config);

  Status Get(std::span<const uint8_t> key, std::vector<uint8_t>& value_out);
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);

  uint64_t num_kvs() const { return num_kvs_; }
  uint64_t displacements() const { return displacements_; }

  static constexpr uint32_t kSlotBytes = 16;
  static constexpr uint32_t kSlotsPerBucket = 4;  // 64 B bucket
  static constexpr uint32_t kMaxKeyBytes = 8;

 private:
  struct Slot {
    bool valid = false;
    uint8_t key_len = 0;
    uint8_t key[kMaxKeyBytes] = {};
    uint64_t pointer = 0;  // (slab address / 32) | value_len << 32
  };

  // Per-operation cache: one engine read per touched bucket.
  using BucketCache = std::unordered_map<uint64_t, std::vector<Slot>>;
  std::vector<Slot>& CachedBucket(BucketCache& cache, uint64_t bucket);
  Slot LoadSlot(BucketCache& cache, uint64_t slot_index);
  void StoreSlot(BucketCache& cache, uint64_t slot_index, const Slot& slot);
  // One contiguous read covering the neighborhood (FaRM's single-DMA GET).
  std::vector<Slot> ReadNeighborhood(uint64_t home);

  uint64_t HomeSlot(std::span<const uint8_t> key) const;
  static bool SlotMatches(const Slot& slot, std::span<const uint8_t> key);

  AccessEngine& engine_;
  Allocator& allocator_;
  HopscotchConfig config_;
  uint64_t num_kvs_ = 0;
  uint64_t displacements_ = 0;
};

}  // namespace kvd

#endif  // SRC_BASELINE_HOPSCOTCH_HASH_TABLE_H_
