#include "src/baseline/cpu_kvs.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/assert.h"
#include "src/common/hashing.h"
#include "src/common/random.h"

namespace kvd {

CpuKvs::CpuKvs(size_t num_shards) : shards_(num_shards) {
  KVD_CHECK(num_shards > 0);
}

CpuKvs::Shard& CpuKvs::ShardFor(std::span<const uint8_t> key) const {
  return shards_[HashBytes(key.data(), key.size(), /*seed=*/0xc0de) % shards_.size()];
}

Status CpuKvs::Get(std::span<const uint8_t> key,
                   std::vector<uint8_t>& value_out) const {
  Shard& shard = ShardFor(key);
  const std::string key_str(key.begin(), key.end());
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key_str);
  if (it == shard.map.end()) {
    return Status::NotFound();
  }
  value_out = it->second;
  return Status::Ok();
}

Status CpuKvs::Put(std::span<const uint8_t> key, std::span<const uint8_t> value) {
  if (key.empty()) {
    return Status::InvalidArgument("empty key");
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map[std::string(key.begin(), key.end())] =
      std::vector<uint8_t>(value.begin(), value.end());
  return Status::Ok();
}

Status CpuKvs::Delete(std::span<const uint8_t> key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.map.erase(std::string(key.begin(), key.end())) > 0
             ? Status::Ok()
             : Status::NotFound();
}

Result<uint64_t> CpuKvs::FetchAdd(std::span<const uint8_t> key, uint64_t delta) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(std::string(key.begin(), key.end()));
  if (it == shard.map.end()) {
    return Status::NotFound();
  }
  if (it->second.size() != 8) {
    return Status::InvalidArgument("fetch-add on non-scalar value");
  }
  uint64_t current;
  std::memcpy(&current, it->second.data(), 8);
  const uint64_t updated = current + delta;
  std::memcpy(it->second.data(), &updated, 8);
  return current;
}

size_t CpuKvs::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

double MeasureCpuKvsMops(unsigned num_threads, uint64_t num_keys, uint64_t total_ops) {
  KVD_CHECK(num_threads >= 1);
  CpuKvs store(64);
  std::vector<uint8_t> key(8);
  for (uint64_t id = 0; id < num_keys; id++) {
    std::memcpy(key.data(), &id, 8);
    KVD_CHECK(store.Put(key, key).ok());
  }
  const uint64_t per_thread = total_ops / num_threads;
  auto worker = [&](unsigned tid) {
    Rng rng(1000 + tid);
    std::vector<uint8_t> thread_key(8);
    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < per_thread; i++) {
      const uint64_t id = rng.NextBelow(num_keys);
      std::memcpy(thread_key.data(), &id, 8);
      (void)store.Get(thread_key, out);
    }
  };
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned t = 1; t < num_threads; t++) {
    threads.emplace_back(worker, t);
  }
  worker(0);
  for (auto& thread : threads) {
    thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(per_thread * num_threads) / seconds / 1e6;
}

}  // namespace kvd
