#include "src/baseline/hopscotch_hash_table.h"

#include <cstring>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {
namespace {

std::vector<uint8_t> BuildValueSlab(std::span<const uint8_t> value) {
  std::vector<uint8_t> slab(2 + value.size());
  const auto vlen = static_cast<uint16_t>(value.size());
  std::memcpy(slab.data(), &vlen, 2);
  std::memcpy(slab.data() + 2, value.data(), value.size());
  return slab;
}

uint32_t SlabBytesFor(uint32_t value_len) { return 2 + value_len; }

}  // namespace

HopscotchHashTable::HopscotchHashTable(AccessEngine& engine, Allocator& allocator,
                                       const HopscotchConfig& config)
    : engine_(engine), allocator_(allocator), config_(config) {
  KVD_CHECK(config.num_slots > 0 && config.num_slots % kSlotsPerBucket == 0);
  KVD_CHECK(config.neighborhood >= 2);
}

uint64_t HopscotchHashTable::HomeSlot(std::span<const uint8_t> key) const {
  return HashBytes(key) % config_.num_slots;
}

bool HopscotchHashTable::SlotMatches(const Slot& slot, std::span<const uint8_t> key) {
  return slot.valid && slot.key_len == key.size() &&
         std::memcmp(slot.key, key.data(), key.size()) == 0;
}

std::vector<HopscotchHashTable::Slot>& HopscotchHashTable::CachedBucket(
    BucketCache& cache, uint64_t bucket) {
  auto it = cache.find(bucket);
  if (it == cache.end()) {
    uint8_t raw[kSlotsPerBucket * kSlotBytes];
    engine_.Read(config_.index_base + bucket * kSlotsPerBucket * kSlotBytes, raw);
    std::vector<Slot> slots(kSlotsPerBucket);
    for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
      const uint8_t* p = raw + s * kSlotBytes;
      slots[s].valid = p[0] != 0;
      slots[s].key_len = p[1];
      std::memcpy(slots[s].key, p + 2, kMaxKeyBytes);
      slots[s].pointer = 0;
      std::memcpy(&slots[s].pointer, p + 2 + kMaxKeyBytes, 6);
    }
    it = cache.emplace(bucket, std::move(slots)).first;
  }
  return it->second;
}

HopscotchHashTable::Slot HopscotchHashTable::LoadSlot(BucketCache& cache,
                                                      uint64_t slot_index) {
  return CachedBucket(cache, slot_index / kSlotsPerBucket)[slot_index %
                                                           kSlotsPerBucket];
}

void HopscotchHashTable::StoreSlot(BucketCache& cache, uint64_t slot_index,
                                   const Slot& slot) {
  const uint64_t bucket = slot_index / kSlotsPerBucket;
  CachedBucket(cache, bucket)[slot_index % kSlotsPerBucket] = slot;
  // Write the whole 64 B bucket back (one DMA write).
  uint8_t raw[kSlotsPerBucket * kSlotBytes] = {};
  const auto& slots = CachedBucket(cache, bucket);
  for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
    uint8_t* p = raw + s * kSlotBytes;
    p[0] = slots[s].valid ? 1 : 0;
    p[1] = slots[s].key_len;
    std::memcpy(p + 2, slots[s].key, kMaxKeyBytes);
    std::memcpy(p + 2 + kMaxKeyBytes, &slots[s].pointer, 6);
  }
  engine_.Write(config_.index_base + bucket * kSlotsPerBucket * kSlotBytes, raw);
}

std::vector<HopscotchHashTable::Slot> HopscotchHashTable::ReadNeighborhood(
    uint64_t home) {
  // FaRM reads the whole neighborhood as one contiguous DMA. Near the end of
  // the array the span wraps; the wrapped tail costs a second read.
  const uint64_t end = home + config_.neighborhood;
  std::vector<Slot> out;
  auto read_span = [&](uint64_t first, uint64_t count) {
    std::vector<uint8_t> raw(count * kSlotBytes);
    engine_.Read(config_.index_base + first * kSlotBytes, raw);
    for (uint64_t s = 0; s < count; s++) {
      const uint8_t* p = raw.data() + s * kSlotBytes;
      Slot slot;
      slot.valid = p[0] != 0;
      slot.key_len = p[1];
      std::memcpy(slot.key, p + 2, kMaxKeyBytes);
      slot.pointer = 0;
      std::memcpy(&slot.pointer, p + 2 + kMaxKeyBytes, 6);
      out.push_back(slot);
    }
  };
  if (end <= config_.num_slots) {
    read_span(home, config_.neighborhood);
  } else {
    read_span(home, config_.num_slots - home);
    read_span(0, end - config_.num_slots);
  }
  return out;
}

Status HopscotchHashTable::Get(std::span<const uint8_t> key,
                               std::vector<uint8_t>& value_out) {
  KVD_CHECK(key.size() <= kMaxKeyBytes);
  const uint64_t home = HomeSlot(key);
  const std::vector<Slot> neighborhood = ReadNeighborhood(home);
  for (const Slot& slot : neighborhood) {
    if (SlotMatches(slot, key)) {
      const uint64_t address = (slot.pointer & 0xffffffffull) * 32;
      const auto value_len = static_cast<uint32_t>(slot.pointer >> 32);
      std::vector<uint8_t> slab(SlabBytesFor(value_len));
      engine_.Read(address, slab);
      value_out.assign(slab.begin() + 2, slab.end());
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status HopscotchHashTable::Put(std::span<const uint8_t> key,
                               std::span<const uint8_t> value) {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return Status::InvalidArgument("key size");
  }
  if (value.size() > 0xffff) {
    return Status::InvalidArgument("value size");
  }
  const uint64_t home = HomeSlot(key);
  BucketCache cache;

  // In-place update if the key exists within its neighborhood.
  for (uint32_t d = 0; d < config_.neighborhood; d++) {
    const uint64_t index = (home + d) % config_.num_slots;
    Slot slot = LoadSlot(cache, index);
    if (SlotMatches(slot, key)) {
      allocator_.Free((slot.pointer & 0xffffffffull) * 32,
                      SlabBytesFor(static_cast<uint32_t>(slot.pointer >> 32)));
      Result<uint64_t> slab =
          allocator_.Allocate(SlabBytesFor(static_cast<uint32_t>(value.size())));
      if (!slab.ok()) {
        return slab.status();
      }
      engine_.Write(*slab, BuildValueSlab(value));
      slot.pointer = (*slab / 32) | (value.size() << 32);
      StoreSlot(cache, index, slot);
      return Status::Ok();
    }
  }

  // Linear probe for a free slot.
  uint64_t free_index = 0;
  bool found = false;
  for (uint32_t d = 0; d < config_.max_probe_slots; d++) {
    const uint64_t index = (home + d) % config_.num_slots;
    if (!LoadSlot(cache, index).valid) {
      free_index = index;
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::OutOfMemory("no free slot within probe bound");
  }

  // Hop the free slot backwards until it lands inside the neighborhood.
  auto distance = [&](uint64_t from, uint64_t to) {
    return (to + config_.num_slots - from) % config_.num_slots;
  };
  while (distance(home, free_index) >= config_.neighborhood) {
    // Candidates: keys in the H-1 slots before the free slot whose own
    // neighborhood still covers it after the move; take the farthest-back
    // movable key (maximum progress per hop).
    bool moved = false;
    for (uint32_t back = config_.neighborhood - 1; back >= 1; back--) {
      const uint64_t candidate_index =
          (free_index + config_.num_slots - back) % config_.num_slots;
      const Slot candidate = LoadSlot(cache, candidate_index);
      if (!candidate.valid) {
        continue;
      }
      const uint64_t candidate_home = HomeSlot(
          std::span<const uint8_t>(candidate.key, candidate.key_len));
      if (distance(candidate_home, free_index) < config_.neighborhood) {
        StoreSlot(cache, free_index, candidate);
        Slot vacated;
        StoreSlot(cache, candidate_index, vacated);
        displacements_++;
        free_index = candidate_index;
        moved = true;
        break;
      }
    }
    if (!moved) {
      // FaRM would chain an overflow bucket here; we report table-full.
      return Status::OutOfMemory("no displaceable key toward neighborhood");
    }
  }

  // Allocate and place.
  Result<uint64_t> slab =
      allocator_.Allocate(SlabBytesFor(static_cast<uint32_t>(value.size())));
  if (!slab.ok()) {
    return slab.status();
  }
  engine_.Write(*slab, BuildValueSlab(value));
  Slot incoming;
  incoming.valid = true;
  incoming.key_len = static_cast<uint8_t>(key.size());
  std::memcpy(incoming.key, key.data(), key.size());
  incoming.pointer = (*slab / 32) | (value.size() << 32);
  StoreSlot(cache, free_index, incoming);
  num_kvs_++;
  return Status::Ok();
}

Status HopscotchHashTable::Delete(std::span<const uint8_t> key) {
  const uint64_t home = HomeSlot(key);
  BucketCache cache;
  for (uint32_t d = 0; d < config_.neighborhood; d++) {
    const uint64_t index = (home + d) % config_.num_slots;
    Slot slot = LoadSlot(cache, index);
    if (SlotMatches(slot, key)) {
      allocator_.Free((slot.pointer & 0xffffffffull) * 32,
                      SlabBytesFor(static_cast<uint32_t>(slot.pointer >> 32)));
      StoreSlot(cache, index, Slot{});
      num_kvs_--;
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

}  // namespace kvd
