#include "src/baseline/cuckoo_hash_table.h"

#include <bit>
#include <set>
#include <unordered_map>
#include <cstring>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {
namespace {

// Slab image for a baseline value: u16 value_len, value bytes (the key lives
// in the index, per the paper's comparison assumption).
std::vector<uint8_t> BuildValueSlab(std::span<const uint8_t> value) {
  std::vector<uint8_t> slab(2 + value.size());
  const auto vlen = static_cast<uint16_t>(value.size());
  std::memcpy(slab.data(), &vlen, 2);
  std::memcpy(slab.data() + 2, value.data(), value.size());
  return slab;
}

uint32_t SlabBytesFor(uint32_t value_len) { return 2 + value_len; }

}  // namespace

CuckooHashTable::CuckooHashTable(AccessEngine& engine, Allocator& allocator,
                                 const CuckooConfig& config)
    : engine_(engine), allocator_(allocator), config_(config), rng_(0xc0c0) {
  KVD_CHECK(config.num_buckets > 0 && std::has_single_bit(config.num_buckets));
}

CuckooHashTable::Bucket CuckooHashTable::ReadBucket(uint64_t index) {
  uint8_t raw[kBucketBytes];
  engine_.Read(config_.index_base + index * kBucketBytes, raw);
  Bucket bucket;
  for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
    const uint8_t* p = raw + s * kSlotBytes;
    Slot& slot = bucket.slots[s];
    slot.valid = p[0] != 0;
    slot.key_len = p[1];
    std::memcpy(slot.key, p + 2, kMaxKeyBytes);
    slot.pointer = 0;
    std::memcpy(&slot.pointer, p + 2 + kMaxKeyBytes, 6);
  }
  return bucket;
}

void CuckooHashTable::WriteBucket(uint64_t index, const Bucket& bucket) {
  uint8_t raw[kBucketBytes] = {};
  for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
    uint8_t* p = raw + s * kSlotBytes;
    const Slot& slot = bucket.slots[s];
    p[0] = slot.valid ? 1 : 0;
    p[1] = slot.key_len;
    std::memcpy(p + 2, slot.key, kMaxKeyBytes);
    std::memcpy(p + 2 + kMaxKeyBytes, &slot.pointer, 6);
  }
  engine_.Write(config_.index_base + index * kBucketBytes, raw);
}

uint64_t CuckooHashTable::Bucket1(std::span<const uint8_t> key) const {
  return HashBytes(key) & (config_.num_buckets - 1);
}

uint64_t CuckooHashTable::AlternateBucket(uint64_t bucket,
                                          std::span<const uint8_t> key_bytes,
                                          uint8_t key_len) const {
  // Partial-key cuckoo displacement: alt(b) = b ^ f(key), an involution, so
  // a displaced key's other candidate is computable from the slot alone.
  uint64_t f = Mix64(HashBytes(key_bytes.data(), key_len, /*seed=*/0x2bad)) |
               1;  // non-zero so alt(b) != b
  return (bucket ^ f) & (config_.num_buckets - 1);
}

uint64_t CuckooHashTable::Bucket2(std::span<const uint8_t> key) const {
  return AlternateBucket(Bucket1(key), key, static_cast<uint8_t>(key.size()));
}

bool CuckooHashTable::SlotMatches(const Slot& slot, std::span<const uint8_t> key) {
  return slot.valid && slot.key_len == key.size() &&
         std::memcmp(slot.key, key.data(), key.size()) == 0;
}

Status CuckooHashTable::Get(std::span<const uint8_t> key,
                            std::vector<uint8_t>& value_out) {
  KVD_CHECK(key.size() <= kMaxKeyBytes);
  // Check both candidate buckets; keys compare in parallel within a bucket.
  for (const uint64_t index : {Bucket1(key), Bucket2(key)}) {
    const Bucket bucket = ReadBucket(index);
    for (const Slot& slot : bucket.slots) {
      if (SlotMatches(slot, key)) {
        const uint64_t address = (slot.pointer & 0xffffffffull) * 32;
        const auto value_len = static_cast<uint32_t>(slot.pointer >> 32);
        std::vector<uint8_t> slab(SlabBytesFor(value_len));
        engine_.Read(address, slab);
        value_out.assign(slab.begin() + 2, slab.end());
        return Status::Ok();
      }
    }
  }
  return Status::NotFound();
}

Status CuckooHashTable::Put(std::span<const uint8_t> key,
                            std::span<const uint8_t> value) {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return Status::InvalidArgument("key size");
  }
  if (value.size() > 0xffff) {
    return Status::InvalidArgument("value size");
  }
  const uint64_t b1 = Bucket1(key);
  const uint64_t b2 = Bucket2(key);
  Bucket bucket1 = ReadBucket(b1);
  Bucket bucket2 = ReadBucket(b2);

  // Update in place if present.
  for (auto& [index, bucket] : {std::pair<uint64_t, Bucket&>{b1, bucket1},
                                std::pair<uint64_t, Bucket&>{b2, bucket2}}) {
    for (Slot& slot : bucket.slots) {
      if (SlotMatches(slot, key)) {
        const uint64_t old_address = (slot.pointer & 0xffffffffull) * 32;
        const auto old_len = static_cast<uint32_t>(slot.pointer >> 32);
        allocator_.Free(old_address, SlabBytesFor(old_len));
        Result<uint64_t> slab = allocator_.Allocate(
            SlabBytesFor(static_cast<uint32_t>(value.size())));
        if (!slab.ok()) {
          return slab.status();
        }
        engine_.Write(*slab, BuildValueSlab(value));
        slot.pointer = (*slab / 32) | (value.size() << 32);
        WriteBucket(index, bucket);
        return Status::Ok();
      }
    }
  }

  // Fresh insert: allocate the value first.
  Result<uint64_t> slab =
      allocator_.Allocate(SlabBytesFor(static_cast<uint32_t>(value.size())));
  if (!slab.ok()) {
    return slab.status();
  }
  engine_.Write(*slab, BuildValueSlab(value));

  Slot incoming;
  incoming.valid = true;
  incoming.key_len = static_cast<uint8_t>(key.size());
  std::memcpy(incoming.key, key.data(), key.size());
  incoming.pointer = (*slab / 32) | (value.size() << 32);

  // Free slot in either candidate bucket?
  for (auto& [index, bucket] : {std::pair<uint64_t, Bucket&>{b1, bucket1},
                                std::pair<uint64_t, Bucket&>{b2, bucket2}}) {
    for (Slot& slot : bucket.slots) {
      if (!slot.valid) {
        slot = incoming;
        WriteBucket(index, bucket);
        num_kvs_++;
        return Status::Ok();
      }
    }
  }

  // Cuckoo path (MemC3 style): *search* a displacement path first, then move
  // keys backward along it, so no key is ever lost. Buckets read during the
  // operation are cached NIC-side for its duration, so each bucket costs one
  // read no matter how often the path revisits it.
  std::unordered_map<uint64_t, Bucket> op_cache;
  op_cache.emplace(b1, bucket1);
  op_cache.emplace(b2, bucket2);
  auto cached_bucket = [&](uint64_t index) -> Bucket& {
    auto it = op_cache.find(index);
    if (it == op_cache.end()) {
      it = op_cache.emplace(index, ReadBucket(index)).first;
    }
    return it->second;
  };

  struct PathStep {
    uint64_t index;
    uint32_t slot;
  };
  std::vector<PathStep> path;
  // Each (bucket, slot) may appear at most once on the path — the deferred
  // backward moves assume every step is displaced exactly once.
  std::set<std::pair<uint64_t, uint32_t>> visited;
  uint64_t current_index = b1;
  uint64_t free_index = 0;
  uint32_t free_slot = 0;
  bool found = false;
  for (uint32_t depth = 0; depth < config_.max_kick_depth && !found; depth++) {
    const auto preferred = static_cast<uint32_t>(rng_.NextBelow(kSlotsPerBucket));
    uint32_t victim = kSlotsPerBucket;
    for (uint32_t offset = 0; offset < kSlotsPerBucket; offset++) {
      const uint32_t candidate = (preferred + offset) % kSlotsPerBucket;
      if (visited.insert({current_index, candidate}).second) {
        victim = candidate;
        break;
      }
    }
    if (victim == kSlotsPerBucket) {
      break;  // every slot of this bucket is already on the path
    }
    path.push_back(PathStep{current_index, victim});
    const Slot displaced = cached_bucket(current_index).slots[victim];
    const uint64_t next_index = AlternateBucket(
        current_index, std::span<const uint8_t>(displaced.key, displaced.key_len),
        displaced.key_len);
    Bucket& next = cached_bucket(next_index);
    for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
      if (!next.slots[s].valid) {
        free_index = next_index;
        free_slot = s;
        found = true;
        break;
      }
    }
    current_index = next_index;
  }
  if (!found) {
    // The table is effectively full at this load factor; a production system
    // would resize. The freshly allocated value is released.
    allocator_.Free(*slab, SlabBytesFor(static_cast<uint32_t>(value.size())));
    return Status::OutOfMemory("cuckoo path exceeded depth bound");
  }

  // Move keys backward: the deepest displaced key moves into the free slot
  // first, vacating its own slot for its predecessor, and so on.
  uint64_t dest_index = free_index;
  uint32_t dest_slot = free_slot;
  for (size_t i = path.size(); i-- > 0;) {
    const PathStep& src = path[i];
    Bucket& src_bucket = cached_bucket(src.index);
    Bucket& dest_bucket = cached_bucket(dest_index);
    dest_bucket.slots[dest_slot] = src_bucket.slots[src.slot];
    src_bucket.slots[src.slot].valid = false;
    WriteBucket(dest_index, dest_bucket);
    displacements_++;
    dest_index = src.index;
    dest_slot = src.slot;
  }
  // The head of the path is now free for the incoming key.
  Bucket& head = cached_bucket(b1);
  KVD_DCHECK(dest_index == b1);
  head.slots[dest_slot] = incoming;
  WriteBucket(b1, head);
  num_kvs_++;
  return Status::Ok();
}

Status CuckooHashTable::Delete(std::span<const uint8_t> key) {
  for (const uint64_t index : {Bucket1(key), Bucket2(key)}) {
    Bucket bucket = ReadBucket(index);
    for (Slot& slot : bucket.slots) {
      if (SlotMatches(slot, key)) {
        allocator_.Free((slot.pointer & 0xffffffffull) * 32,
                        SlabBytesFor(static_cast<uint32_t>(slot.pointer >> 32)));
        slot = Slot{};
        WriteBucket(index, bucket);
        num_kvs_--;
        return Status::Ok();
      }
    }
  }
  return Status::NotFound();
}

}  // namespace kvd
