// CPU-based key-value store baseline (paper §2.2, Figure 1a).
//
// The class of system KV-Direct displaces: a sharded in-memory hash map
// served by host cores. Keys hash to shards, each protected by its own
// mutex — the standard memcached-style architecture whose per-core limits
// (§2.2: ~5.5 Mops interleaved, ~7.9 Mops batched) motivate the NIC offload.
//
// This is a real, thread-safe store: tests run it concurrently, and
// MeasureCpuKvsMops gives a wall-clock datapoint for Table 3 alongside the
// paper-constant analytic model in analytic_models.h.
#ifndef SRC_BASELINE_CPU_KVS_H_
#define SRC_BASELINE_CPU_KVS_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace kvd {

class CpuKvs {
 public:
  explicit CpuKvs(size_t num_shards = 16);

  CpuKvs(const CpuKvs&) = delete;
  CpuKvs& operator=(const CpuKvs&) = delete;

  Status Get(std::span<const uint8_t> key, std::vector<uint8_t>& value_out) const;
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);

  // Atomic fetch-and-add on an 8-byte value (the single-key atomic whose
  // throughput cannot scale beyond one core on CPU systems, §5.1.3).
  Result<uint64_t> FetchAdd(std::span<const uint8_t> key, uint64_t delta);

  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::vector<uint8_t>> map;
  };

  Shard& ShardFor(std::span<const uint8_t> key) const;

  mutable std::vector<Shard> shards_;
};

// Wall-clock GET throughput of CpuKvs with `num_threads` worker threads over
// `num_keys` preloaded 8-byte values (Mops). A real measurement on this
// host, complementing the paper-constant model.
double MeasureCpuKvsMops(unsigned num_threads, uint64_t num_keys, uint64_t total_ops);

}  // namespace kvd

#endif  // SRC_BASELINE_CPU_KVS_H_
