// DMA-frugal chained hash index (paper §3.3.1).
//
// The index is an array of 64-byte buckets at the front of the KVS region;
// the rest of the region is the slab-allocated heap. KVs whose key+value size
// is at or below the inline threshold live directly in hash slots (GET = 1
// access, PUT = 2); larger KVs live in one slab and cost one extra access.
// Collisions chain 64-byte buckets allocated from the slab heap — the paper
// chooses chaining over cuckoo/hopscotch because it balances GET and PUT cost
// and stays robust under write-intensive load (Figure 11).
//
// All memory is touched through an AccessEngine, so the same code path runs
// untimed (unit tests), counted (accesses-per-op figures), or fully simulated
// (PCIe/DRAM timing).
#ifndef SRC_HASH_HASH_INDEX_H_
#define SRC_HASH_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/common/hashing.h"
#include "src/common/status.h"
#include "src/hash/hash_index_layout.h"
#include "src/mem/access_engine.h"
#include "src/obs/metric_registry.h"

namespace kvd {

struct HashIndexConfig {
  uint64_t memory_base = 0;   // start of the KVS region in host memory
  uint64_t memory_size = 0;   // index + dynamic heap combined
  double hash_index_ratio = 0.5;       // fraction of the region used as index
  uint32_t inline_threshold_bytes = 10;  // key+value <= threshold -> inline
  // Must match the SlabConfig of the allocator managing the heap region.
  uint32_t min_slab_bytes = 32;
  uint32_t max_slab_bytes = 512;

  struct Regions {
    uint64_t index_base;
    uint64_t num_buckets;
    uint64_t heap_base;
    uint64_t heap_size;
  };
  // Splits the region into hash index and slab heap (heap aligned to
  // max_slab_bytes). The caller builds the SlabAllocator over the heap part.
  Regions ComputeRegions() const;
};

struct HashIndexStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t chain_follows = 0;        // extra buckets read due to collisions
  uint64_t secondary_false_hits = 0; // 9-bit hash matched, key did not
  uint64_t chained_buckets_live = 0;
};

class HashIndex {
 public:
  // The allocator must manage exactly the heap region from ComputeRegions().
  HashIndex(AccessEngine& engine, Allocator& allocator, const HashIndexConfig& config);

  // Reads the value of `key` into `value_out`.
  Status Get(std::span<const uint8_t> key, std::vector<uint8_t>& value_out);

  // Inserts or replaces `key` with `value`.
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);

  // Removes `key`.
  Status Delete(std::span<const uint8_t> key);

  // Atomic read-modify-write used by the KV processor's atomics and vector
  // update paths: reads the value, applies `updater` (which must preserve the
  // value's size), and writes it back in place — one read plus one write.
  // `original_out`, when non-null, receives the pre-update value.
  using ValueUpdater = std::function<void(std::vector<uint8_t>& value)>;
  Status UpdateInPlace(std::span<const uint8_t> key, const ValueUpdater& updater,
                       std::vector<uint8_t>* original_out = nullptr);

  // True if `key` is present (same cost as Get without the value copy).
  bool Contains(std::span<const uint8_t> key);

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t num_kvs() const { return num_kvs_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  // Stored payload over total region size: the paper's "memory utilization".
  double Utilization() const {
    return static_cast<double>(payload_bytes_) / static_cast<double>(config_.memory_size);
  }
  const HashIndexStats& stats() const { return stats_; }
  const HashIndexConfig& config() const { return config_; }

  void RegisterMetrics(MetricRegistry& registry) const;

  // Size limits for validation.
  static constexpr uint32_t kMaxKeyBytes = 255;
  static constexpr uint32_t kSlabHeaderBytes = 4;  // u16 klen + u16 vlen

  // Address of the chain-head bucket for `key` (used by the KV processor's
  // write-back path, which targets the key's bucket line).
  uint64_t BucketAddressFor(std::span<const uint8_t> key) const;

 private:
  // Where `key` lives: bucket address, first slot, and (non-inline) the slab.
  struct Location {
    uint64_t bucket_address;
    BucketView bucket;
    uint32_t slot;
    bool is_inline;
    uint32_t kv_bytes;        // key+value bytes of the stored entry
    PointerSlot pointer;      // valid when !is_inline
    uint64_t parent_address;  // previous bucket in chain, or kNoParent
  };
  static constexpr uint64_t kNoParent = ~uint64_t{0};

  uint8_t SlabClassFor(uint32_t slab_bytes) const;
  BucketView ReadBucket(uint64_t address);
  void WriteBucket(uint64_t address, const BucketView& bucket);

  // A bucket read during a chain walk, kept so a following insert can reuse
  // it instead of re-reading (PUT must cost one bucket read + one write).
  struct WalkedBucket {
    uint64_t address;
    BucketView view;
  };

  // Walks the chain for `key`. Returns its location (and optionally the
  // stored value), or nullopt. When `walked` is non-null it receives every
  // bucket read along the way, covering the full chain on a miss.
  std::optional<Location> Find(std::span<const uint8_t> key,
                               std::vector<uint8_t>* value_out = nullptr,
                               std::vector<WalkedBucket>* walked = nullptr);

  // Reads the KV stored in a slab; returns false on key mismatch
  // (secondary-hash false positive).
  bool ReadSlabKv(const PointerSlot& pointer, std::span<const uint8_t> key,
                  std::vector<uint8_t>* value_out);

  // Inserts a fresh key (caller guarantees absence). `walked` carries the
  // chain buckets a preceding Find() already read; pass empty to re-walk.
  Status Insert(std::span<const uint8_t> key, std::span<const uint8_t> value,
                std::vector<WalkedBucket> walked);

  // Removes the entry at `loc` and frees its storage; rewrites the bucket and
  // unlinks it from the chain if it became empty.
  void RemoveAt(Location& loc);

  // Rewrites `bucket` compacted (entries packed from slot 0). Preserves the
  // chain pointer.
  static BucketView Compacted(const BucketView& bucket);

  // Entry placement into a specific bucket; returns false if it lacks space.
  bool TryPlace(BucketView& bucket, std::span<const uint8_t> key,
                std::span<const uint8_t> value, bool inline_kv,
                uint64_t slab_address, uint8_t slab_class, uint16_t secondary);

  AccessEngine& engine_;
  Allocator& allocator_;
  HashIndexConfig config_;
  uint64_t index_base_;
  uint64_t num_buckets_;
  uint64_t num_kvs_ = 0;
  uint64_t payload_bytes_ = 0;
  HashIndexStats stats_;
};

}  // namespace kvd

#endif  // SRC_HASH_HASH_INDEX_H_
