// Bit-level layout of one hash bucket (paper §3.3.1, Figure 5).
//
// A bucket is one 64-byte line — the PCIe/DRAM access granularity sweet spot
// (Figure 3a) — containing:
//
//   bytes [0, 50)   10 hash slots, 5 bytes each:
//                     bits [0, 31)  pointer (host address / 32 — 32 B
//                                   allocation granularity covers 64 GiB)
//                     bits [31, 40) 9-bit secondary hash for parallel
//                                   inline checking (1/512 false positives)
//                   for inline KVs the 5 bytes hold raw KV data instead
//   bytes [50, 54)  3-bit slab type per slot (10 x 3 = 30 bits):
//                     0 = empty, 1..6 = pointer to slab of size class t-1,
//                     7 = inline data
//   bytes [54, 56)  10-bit bitmap marking the *beginning* of each inline KV
//                   (the end follows from the KV's own length header)
//   bytes [56, 60)  chain word: bit 31 = valid, bits [0, 31) = pointer to the
//                   next bucket on hash collision (again address / 32)
//   bytes [60, 64)  reserved
//
// Inline KV data spans consecutive slots: a 1-byte key length and 1-byte
// value length header, then key then value. Ten slots give 50 bytes, so the
// largest inline KV is 48 bytes of key+value.
#ifndef SRC_HASH_HASH_INDEX_LAYOUT_H_
#define SRC_HASH_HASH_INDEX_LAYOUT_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "src/common/assert.h"

namespace kvd {

inline constexpr uint32_t kBucketBytes = 64;
inline constexpr uint32_t kSlotsPerBucket = 10;
inline constexpr uint32_t kSlotBytes = 5;
inline constexpr uint32_t kInlineHeaderBytes = 2;
inline constexpr uint32_t kMaxInlineKvBytes =
    kSlotsPerBucket * kSlotBytes - kInlineHeaderBytes;  // 48
inline constexpr uint32_t kPointerGranuleBytes = 32;
inline constexpr uint32_t kSecondaryHashBits = 9;
inline constexpr uint32_t kMaxSlabClasses = 6;  // 3-bit type: 1..6 are classes

// Slot type values.
inline constexpr uint8_t kSlotEmpty = 0;
inline constexpr uint8_t kSlotInline = 7;
// Pointer slots use types 1..6: type = slab class + 1.

// Decoded pointer slot.
struct PointerSlot {
  uint64_t address;        // byte address (pointer * 32)
  uint16_t secondary_hash; // 9 bits
  uint8_t slab_class;      // index into the allocator's size classes
};

// In-memory view of one bucket with typed accessors. The raw bytes are the
// exact wire image read from / written to host memory.
class BucketView {
 public:
  BucketView() { raw_.fill(0); }
  explicit BucketView(std::span<const uint8_t> bytes) {
    KVD_DCHECK(bytes.size() == kBucketBytes);
    std::memcpy(raw_.data(), bytes.data(), kBucketBytes);
  }

  std::span<const uint8_t> raw() const { return raw_; }
  std::span<uint8_t> raw_mutable() { return raw_; }

  // --- slot type field ---
  uint8_t SlotType(uint32_t slot) const {
    KVD_DCHECK(slot < kSlotsPerBucket);
    const uint32_t bits = LoadU32(50);
    return static_cast<uint8_t>((bits >> (slot * 3)) & 0x7);
  }
  void SetSlotType(uint32_t slot, uint8_t type) {
    KVD_DCHECK(slot < kSlotsPerBucket && type <= 7);
    uint32_t bits = LoadU32(50);
    bits &= ~(0x7u << (slot * 3));
    bits |= static_cast<uint32_t>(type) << (slot * 3);
    StoreU32(50, bits);
  }

  // --- inline-begin bitmap ---
  bool InlineBegin(uint32_t slot) const {
    KVD_DCHECK(slot < kSlotsPerBucket);
    return (LoadU16(54) >> slot) & 1;
  }
  void SetInlineBegin(uint32_t slot, bool begin) {
    uint16_t bits = LoadU16(54);
    bits = static_cast<uint16_t>(begin ? bits | (1u << slot) : bits & ~(1u << slot));
    StoreU16(54, bits);
  }

  // --- pointer slots ---
  PointerSlot GetPointerSlot(uint32_t slot) const {
    KVD_DCHECK(SlotType(slot) >= 1 && SlotType(slot) <= kMaxSlabClasses);
    const uint64_t v = LoadSlot40(slot);
    PointerSlot out;
    out.address = (v & 0x7fffffffULL) * kPointerGranuleBytes;
    out.secondary_hash = static_cast<uint16_t>((v >> 31) & 0x1ff);
    out.slab_class = static_cast<uint8_t>(SlotType(slot) - 1);
    return out;
  }
  void SetPointerSlot(uint32_t slot, uint64_t address, uint16_t secondary_hash,
                      uint8_t slab_class) {
    KVD_DCHECK(address % kPointerGranuleBytes == 0);
    KVD_DCHECK(secondary_hash < (1u << kSecondaryHashBits));
    KVD_DCHECK(slab_class < kMaxSlabClasses);
    const uint64_t pointer = address / kPointerGranuleBytes;
    KVD_CHECK_MSG(pointer < (1ULL << 31), "address beyond 31-bit pointer range");
    StoreSlot40(slot, pointer | (static_cast<uint64_t>(secondary_hash) << 31));
    SetSlotType(slot, static_cast<uint8_t>(slab_class + 1));
    SetInlineBegin(slot, false);
  }

  // --- inline data spanning slots ---
  // Reads/writes `length` bytes starting at byte `offset` of slot `first`.
  void ReadInlineBytes(uint32_t first_slot, std::span<uint8_t> out) const {
    KVD_DCHECK(first_slot * kSlotBytes + out.size() <= kSlotsPerBucket * kSlotBytes);
    std::memcpy(out.data(), raw_.data() + first_slot * kSlotBytes, out.size());
  }
  void WriteInlineBytes(uint32_t first_slot, std::span<const uint8_t> in) {
    KVD_DCHECK(first_slot * kSlotBytes + in.size() <= kSlotsPerBucket * kSlotBytes);
    std::memcpy(raw_.data() + first_slot * kSlotBytes, in.data(), in.size());
  }

  void ClearSlot(uint32_t slot) {
    SetSlotType(slot, kSlotEmpty);
    SetInlineBegin(slot, false);
    StoreSlot40(slot, 0);
  }

  // --- chain pointer ---
  bool HasChain() const { return (LoadU32(56) >> 31) & 1; }
  uint64_t ChainAddress() const {
    KVD_DCHECK(HasChain());
    return static_cast<uint64_t>(LoadU32(56) & 0x7fffffffu) * kPointerGranuleBytes;
  }
  void SetChain(uint64_t address) {
    KVD_DCHECK(address % kPointerGranuleBytes == 0);
    const uint64_t pointer = address / kPointerGranuleBytes;
    KVD_CHECK_MSG(pointer < (1ULL << 31), "chain address beyond pointer range");
    StoreU32(56, static_cast<uint32_t>(pointer) | 0x80000000u);
  }
  void ClearChain() { StoreU32(56, 0); }

  // Number of slots the given inline KV payload occupies.
  static uint32_t InlineSlotSpan(uint32_t kv_bytes) {
    return (kInlineHeaderBytes + kv_bytes + kSlotBytes - 1) / kSlotBytes;
  }

  // Count of empty slots in the bucket.
  uint32_t FreeSlots() const {
    uint32_t free = 0;
    for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
      free += SlotType(s) == kSlotEmpty ? 1 : 0;
    }
    return free;
  }

 private:
  uint32_t LoadU32(uint32_t offset) const {
    uint32_t v;
    std::memcpy(&v, raw_.data() + offset, sizeof(v));
    return v;
  }
  void StoreU32(uint32_t offset, uint32_t v) {
    std::memcpy(raw_.data() + offset, &v, sizeof(v));
  }
  uint16_t LoadU16(uint32_t offset) const {
    uint16_t v;
    std::memcpy(&v, raw_.data() + offset, sizeof(v));
    return v;
  }
  void StoreU16(uint32_t offset, uint16_t v) {
    std::memcpy(raw_.data() + offset, &v, sizeof(v));
  }
  uint64_t LoadSlot40(uint32_t slot) const {
    uint64_t v = 0;
    std::memcpy(&v, raw_.data() + slot * kSlotBytes, kSlotBytes);
    return v;
  }
  void StoreSlot40(uint32_t slot, uint64_t v) {
    KVD_DCHECK(v < (1ULL << 40));
    std::memcpy(raw_.data() + slot * kSlotBytes, &v, kSlotBytes);
  }

  std::array<uint8_t, kBucketBytes> raw_;
};

}  // namespace kvd

#endif  // SRC_HASH_HASH_INDEX_LAYOUT_H_
