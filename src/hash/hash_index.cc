#include "src/hash/hash_index.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace kvd {
namespace {

// One logical entry while scanning a bucket.
struct ParsedEntry {
  uint32_t slot;
  uint32_t span;  // slots occupied
  bool is_inline;
  uint8_t klen = 0;  // inline only
  uint8_t vlen = 0;  // inline only
};

std::vector<ParsedEntry> ParseEntries(const BucketView& bucket) {
  std::vector<ParsedEntry> entries;
  uint32_t slot = 0;
  while (slot < kSlotsPerBucket) {
    const uint8_t type = bucket.SlotType(slot);
    if (type == kSlotEmpty) {
      slot++;
      continue;
    }
    if (type == kSlotInline) {
      KVD_CHECK_MSG(bucket.InlineBegin(slot), "inline slot without begin mark");
      uint8_t header[kInlineHeaderBytes];
      bucket.ReadInlineBytes(slot, std::span<uint8_t>(header, kInlineHeaderBytes));
      ParsedEntry entry;
      entry.slot = slot;
      entry.is_inline = true;
      entry.klen = header[0];
      entry.vlen = header[1];
      entry.span = BucketView::InlineSlotSpan(entry.klen + entry.vlen);
      entries.push_back(entry);
      slot += entry.span;
    } else {
      entries.push_back(ParsedEntry{slot, 1, false, 0, 0});
      slot++;
    }
  }
  return entries;
}

// Serialized slab image: u16 klen, u16 vlen, key, value.
std::vector<uint8_t> BuildSlabImage(std::span<const uint8_t> key,
                                    std::span<const uint8_t> value) {
  std::vector<uint8_t> slab(HashIndex::kSlabHeaderBytes + key.size() + value.size());
  const auto klen = static_cast<uint16_t>(key.size());
  const auto vlen = static_cast<uint16_t>(value.size());
  std::memcpy(slab.data(), &klen, 2);
  std::memcpy(slab.data() + 2, &vlen, 2);
  std::memcpy(slab.data() + HashIndex::kSlabHeaderBytes, key.data(), key.size());
  if (!value.empty()) {  // an empty span's data() may be null
    std::memcpy(slab.data() + HashIndex::kSlabHeaderBytes + key.size(),
                value.data(), value.size());
  }
  return slab;
}

// Serialized inline image: u8 klen, u8 vlen, key, value.
std::vector<uint8_t> BuildInlineImage(std::span<const uint8_t> key,
                                      std::span<const uint8_t> value) {
  std::vector<uint8_t> data(kInlineHeaderBytes + key.size() + value.size());
  data[0] = static_cast<uint8_t>(key.size());
  data[1] = static_cast<uint8_t>(value.size());
  std::memcpy(data.data() + kInlineHeaderBytes, key.data(), key.size());
  if (!value.empty()) {  // an empty span's data() may be null
    std::memcpy(data.data() + kInlineHeaderBytes + key.size(), value.data(),
                value.size());
  }
  return data;
}

}  // namespace

HashIndexConfig::Regions HashIndexConfig::ComputeRegions() const {
  KVD_CHECK(memory_size > 0);
  KVD_CHECK(hash_index_ratio > 0.0 && hash_index_ratio < 1.0);
  Regions regions;
  regions.index_base = memory_base;
  regions.num_buckets = static_cast<uint64_t>(
      static_cast<double>(memory_size) * hash_index_ratio / kBucketBytes);
  KVD_CHECK_MSG(regions.num_buckets > 0, "hash index ratio leaves no buckets");
  uint64_t heap_base = memory_base + regions.num_buckets * kBucketBytes;
  // Align the heap so buddy addresses stay aligned to their slab size.
  const uint64_t align = max_slab_bytes;
  heap_base = (heap_base + align - 1) / align * align;
  const uint64_t end = memory_base + memory_size;
  KVD_CHECK_MSG(heap_base < end, "hash index ratio leaves no heap");
  regions.heap_base = heap_base;
  regions.heap_size = (end - heap_base) / align * align;
  return regions;
}

HashIndex::HashIndex(AccessEngine& engine, Allocator& allocator,
                     const HashIndexConfig& config)
    : engine_(engine), allocator_(allocator), config_(config) {
  const auto regions = config.ComputeRegions();
  index_base_ = regions.index_base;
  num_buckets_ = regions.num_buckets;
  KVD_CHECK(config.inline_threshold_bytes <= kMaxInlineKvBytes);
  // The 3-bit slot type field encodes at most kMaxSlabClasses slab classes
  // (Figure 5); a wider class range would corrupt pointer slots.
  const auto num_classes = static_cast<uint32_t>(
      std::countr_zero(config.max_slab_bytes) - std::countr_zero(config.min_slab_bytes) +
      1);
  KVD_CHECK_MSG(num_classes <= kMaxSlabClasses,
                "min/max slab span exceeds the 3-bit slot type field");
}

uint8_t HashIndex::SlabClassFor(uint32_t slab_bytes) const {
  const uint32_t rounded = std::max(std::bit_ceil(slab_bytes), config_.min_slab_bytes);
  return static_cast<uint8_t>(std::countr_zero(rounded) -
                              std::countr_zero(config_.min_slab_bytes));
}

uint64_t HashIndex::BucketAddressFor(std::span<const uint8_t> key) const {
  return index_base_ + HashKey(key).BucketIndex(num_buckets_) * kBucketBytes;
}

BucketView HashIndex::ReadBucket(uint64_t address) {
  uint8_t raw[kBucketBytes];
  engine_.Read(address, raw);
  return BucketView(raw);
}

void HashIndex::WriteBucket(uint64_t address, const BucketView& bucket) {
  engine_.Write(address, bucket.raw());
}

bool HashIndex::ReadSlabKv(const PointerSlot& pointer, std::span<const uint8_t> key,
                           std::vector<uint8_t>* value_out) {
  const uint32_t slab_bytes = config_.min_slab_bytes << pointer.slab_class;
  std::vector<uint8_t> slab(slab_bytes);
  if (slab_bytes <= 512) {
    // Paper-sized slabs (32..512 B): fetch the whole class in one DMA, so a
    // non-inline GET costs exactly bucket + KV = 2 accesses (§3.3.1).
    engine_.Read(pointer.address, slab);
  } else {
    // Large slabs (the vector extension): internal fragmentation can waste
    // half the class, so read the first line for the length header, then
    // exactly the remaining payload.
    engine_.Read(pointer.address, std::span<uint8_t>(slab.data(), 64));
    uint16_t k;
    uint16_t v;
    std::memcpy(&k, slab.data(), 2);
    std::memcpy(&v, slab.data() + 2, 2);
    const uint64_t total = kSlabHeaderBytes + static_cast<uint64_t>(k) + v;
    if (total > 64 && total <= slab_bytes) {
      engine_.Read(pointer.address + 64,
                   std::span<uint8_t>(slab.data() + 64, total - 64));
    }
  }
  uint16_t klen;
  uint16_t vlen;
  std::memcpy(&klen, slab.data(), 2);
  std::memcpy(&vlen, slab.data() + 2, 2);
  if (klen != key.size() ||
      std::memcmp(slab.data() + kSlabHeaderBytes, key.data(), klen) != 0) {
    stats_.secondary_false_hits++;
    return false;
  }
  if (value_out != nullptr) {
    value_out->assign(slab.begin() + kSlabHeaderBytes + klen,
                      slab.begin() + kSlabHeaderBytes + klen + vlen);
  }
  return true;
}

std::optional<HashIndex::Location> HashIndex::Find(std::span<const uint8_t> key,
                                                   std::vector<uint8_t>* value_out,
                                                   std::vector<WalkedBucket>* walked) {
  const KeyHash kh = HashKey(key);
  uint64_t address = index_base_ + kh.BucketIndex(num_buckets_) * kBucketBytes;
  uint64_t parent = kNoParent;
  bool first = true;
  while (true) {
    BucketView bucket = ReadBucket(address);
    if (walked != nullptr) {
      walked->push_back(WalkedBucket{address, bucket});
    }
    if (!first) {
      stats_.chain_follows++;
    }
    first = false;
    for (const ParsedEntry& entry : ParseEntries(bucket)) {
      if (entry.is_inline) {
        if (entry.klen != key.size()) {
          continue;
        }
        std::vector<uint8_t> data(kInlineHeaderBytes + entry.klen + entry.vlen);
        bucket.ReadInlineBytes(entry.slot, data);
        if (std::memcmp(data.data() + kInlineHeaderBytes, key.data(), entry.klen) != 0) {
          continue;
        }
        if (value_out != nullptr) {
          value_out->assign(data.begin() + kInlineHeaderBytes + entry.klen, data.end());
        }
        Location loc;
        loc.bucket_address = address;
        loc.bucket = bucket;
        loc.slot = entry.slot;
        loc.is_inline = true;
        loc.kv_bytes = static_cast<uint32_t>(entry.klen) + entry.vlen;
        loc.parent_address = parent;
        return loc;
      }
      const PointerSlot pointer = bucket.GetPointerSlot(entry.slot);
      if (pointer.secondary_hash != kh.SecondaryHash()) {
        continue;
      }
      std::vector<uint8_t> value;
      if (ReadSlabKv(pointer, key, &value)) {
        if (value_out != nullptr) {
          *value_out = value;
        }
        Location loc;
        loc.bucket_address = address;
        loc.bucket = bucket;
        loc.slot = entry.slot;
        loc.is_inline = false;
        loc.kv_bytes = static_cast<uint32_t>(key.size() + value.size());
        loc.pointer = pointer;
        loc.parent_address = parent;
        return loc;
      }
    }
    if (!bucket.HasChain()) {
      return std::nullopt;
    }
    parent = address;
    address = bucket.ChainAddress();
  }
}

Status HashIndex::Get(std::span<const uint8_t> key, std::vector<uint8_t>& value_out) {
  stats_.gets++;
  if (Find(key, &value_out).has_value()) {
    return Status::Ok();
  }
  return Status::NotFound();
}

BucketView HashIndex::Compacted(const BucketView& bucket) {
  BucketView out;
  uint32_t next = 0;
  for (const ParsedEntry& entry : ParseEntries(bucket)) {
    if (entry.is_inline) {
      const uint32_t bytes = kInlineHeaderBytes + entry.klen + entry.vlen;
      std::vector<uint8_t> data(bytes);
      bucket.ReadInlineBytes(entry.slot, data);
      out.WriteInlineBytes(next, data);
      out.SetInlineBegin(next, true);
      for (uint32_t s = 0; s < entry.span; s++) {
        out.SetSlotType(next + s, kSlotInline);
      }
    } else {
      const PointerSlot pointer = bucket.GetPointerSlot(entry.slot);
      out.SetPointerSlot(next, pointer.address, pointer.secondary_hash,
                         pointer.slab_class);
    }
    next += entry.span;
  }
  if (bucket.HasChain()) {
    out.SetChain(bucket.ChainAddress());
  }
  return out;
}

bool HashIndex::TryPlace(BucketView& bucket, std::span<const uint8_t> key,
                         std::span<const uint8_t> value, bool inline_kv,
                         uint64_t slab_address, uint8_t slab_class,
                         uint16_t secondary) {
  const uint32_t needed =
      inline_kv
          ? BucketView::InlineSlotSpan(static_cast<uint32_t>(key.size() + value.size()))
          : 1;
  if (bucket.FreeSlots() < needed) {
    return false;
  }
  // Compacting packs live entries to the front, so the free slots are
  // contiguous at the tail; the rewrite costs nothing extra because a
  // mutation writes the whole 64 B bucket anyway.
  BucketView compacted = Compacted(bucket);
  const uint32_t first = kSlotsPerBucket - compacted.FreeSlots();
  if (inline_kv) {
    compacted.WriteInlineBytes(first, BuildInlineImage(key, value));
    compacted.SetInlineBegin(first, true);
    for (uint32_t s = 0; s < needed; s++) {
      compacted.SetSlotType(first + s, kSlotInline);
    }
  } else {
    compacted.SetPointerSlot(first, slab_address, secondary, slab_class);
  }
  bucket = compacted;
  return true;
}

Status HashIndex::Insert(std::span<const uint8_t> key, std::span<const uint8_t> value,
                         std::vector<WalkedBucket> walked) {
  const KeyHash kh = HashKey(key);
  const auto kv_bytes = static_cast<uint32_t>(key.size() + value.size());
  const bool inline_kv =
      kv_bytes <= config_.inline_threshold_bytes && kv_bytes <= kMaxInlineKvBytes;

  uint64_t slab_address = 0;
  uint8_t slab_class = 0;
  if (!inline_kv) {
    const uint32_t slab_bytes = kSlabHeaderBytes + kv_bytes;
    Result<uint64_t> allocated = allocator_.Allocate(slab_bytes);
    if (!allocated.ok()) {
      return allocated.status();
    }
    slab_address = *allocated;
    slab_class = SlabClassFor(slab_bytes);
    // One DMA write for the KV body: header + key + value.
    engine_.Write(slab_address, BuildSlabImage(key, value));
  }

  // Use the buckets the caller's Find() already read (the hardware pipeline
  // keeps them in flight); walk further only if the cache is empty or stale.
  if (walked.empty()) {
    uint64_t address = index_base_ + kh.BucketIndex(num_buckets_) * kBucketBytes;
    while (true) {
      BucketView bucket = ReadBucket(address);
      walked.push_back(WalkedBucket{address, bucket});
      if (!bucket.HasChain()) {
        break;
      }
      stats_.chain_follows++;
      address = bucket.ChainAddress();
    }
  }

  // Place into the first bucket along the chain with space.
  for (WalkedBucket& wb : walked) {
    if (TryPlace(wb.view, key, value, inline_kv, slab_address, slab_class,
                 kh.SecondaryHash())) {
      WriteBucket(wb.address, wb.view);
      num_kvs_++;
      payload_bytes_ += kv_bytes;
      return Status::Ok();
    }
  }

  // Chain a fresh bucket off the tail, allocated from the slab heap.
  Result<uint64_t> chained = allocator_.Allocate(kBucketBytes);
  if (!chained.ok()) {
    if (!inline_kv) {
      allocator_.Free(slab_address, config_.min_slab_bytes << slab_class);
    }
    return chained.status();
  }
  BucketView fresh;
  KVD_CHECK(TryPlace(fresh, key, value, inline_kv, slab_address, slab_class,
                     kh.SecondaryHash()));
  WriteBucket(*chained, fresh);
  WalkedBucket& tail = walked.back();
  tail.view.SetChain(*chained);
  WriteBucket(tail.address, tail.view);
  stats_.chained_buckets_live++;
  num_kvs_++;
  payload_bytes_ += kv_bytes;
  return Status::Ok();
}

Status HashIndex::Put(std::span<const uint8_t> key, std::span<const uint8_t> value) {
  stats_.puts++;
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return Status::InvalidArgument("key size");
  }
  const auto kv_bytes = static_cast<uint32_t>(key.size() + value.size());
  const bool fits_inline =
      kv_bytes <= config_.inline_threshold_bytes && kv_bytes <= kMaxInlineKvBytes;
  if (!fits_inline && kSlabHeaderBytes + kv_bytes > config_.max_slab_bytes) {
    return Status::InvalidArgument("value too large for slab classes");
  }
  if (fits_inline && value.size() > 255) {
    return Status::InvalidArgument("value size");
  }

  std::vector<WalkedBucket> walked;
  std::optional<Location> loc = Find(key, nullptr, &walked);
  if (!loc.has_value()) {
    return Insert(key, value, std::move(walked));
  }

  if (loc->is_inline && fits_inline &&
      BucketView::InlineSlotSpan(kv_bytes) ==
          BucketView::InlineSlotSpan(loc->kv_bytes)) {
    // Same slot span: overwrite the inline bytes, one bucket write.
    loc->bucket.WriteInlineBytes(loc->slot, BuildInlineImage(key, value));
    WriteBucket(loc->bucket_address, loc->bucket);
    payload_bytes_ += kv_bytes;
    payload_bytes_ -= loc->kv_bytes;
    return Status::Ok();
  }

  if (!loc->is_inline && !fits_inline &&
      SlabClassFor(kSlabHeaderBytes + kv_bytes) == loc->pointer.slab_class) {
    // Same slab class: rewrite the slab body in place, bucket untouched.
    engine_.Write(loc->pointer.address, BuildSlabImage(key, value));
    payload_bytes_ += kv_bytes;
    payload_bytes_ -= loc->kv_bytes;
    return Status::Ok();
  }

  // Shape changed (inline <-> slab, or different slab class): replace. The
  // walked buckets are stale after the removal, so Insert re-walks.
  RemoveAt(*loc);
  return Insert(key, value, {});
}

Status HashIndex::UpdateInPlace(std::span<const uint8_t> key,
                                const ValueUpdater& updater,
                                std::vector<uint8_t>* original_out) {
  std::vector<uint8_t> value;
  std::optional<Location> loc = Find(key, &value);
  if (!loc.has_value()) {
    return Status::NotFound();
  }
  if (original_out != nullptr) {
    *original_out = value;
  }
  updater(value);
  KVD_CHECK_MSG(value.size() + key.size() == loc->kv_bytes,
                "UpdateInPlace must preserve value size");
  if (loc->is_inline) {
    loc->bucket.WriteInlineBytes(loc->slot, BuildInlineImage(key, value));
    WriteBucket(loc->bucket_address, loc->bucket);
  } else {
    engine_.Write(loc->pointer.address, BuildSlabImage(key, value));
  }
  return Status::Ok();
}

void HashIndex::RemoveAt(Location& loc) {
  if (loc.is_inline) {
    const uint32_t span = BucketView::InlineSlotSpan(loc.kv_bytes);
    for (uint32_t s = 0; s < span; s++) {
      loc.bucket.ClearSlot(loc.slot + s);
    }
  } else {
    loc.bucket.ClearSlot(loc.slot);
    allocator_.Free(loc.pointer.address,
                    config_.min_slab_bytes << loc.pointer.slab_class);
  }
  payload_bytes_ -= loc.kv_bytes;
  num_kvs_--;

  const bool now_empty = loc.bucket.FreeSlots() == kSlotsPerBucket;
  const bool is_chained_bucket = loc.parent_address != kNoParent;
  if (now_empty && is_chained_bucket) {
    // Unlink the empty chained bucket: the parent inherits its chain tail.
    BucketView parent = ReadBucket(loc.parent_address);
    if (loc.bucket.HasChain()) {
      parent.SetChain(loc.bucket.ChainAddress());
    } else {
      parent.ClearChain();
    }
    WriteBucket(loc.parent_address, parent);
    allocator_.Free(loc.bucket_address, kBucketBytes);
    stats_.chained_buckets_live--;
    return;
  }
  WriteBucket(loc.bucket_address, loc.bucket);
}

Status HashIndex::Delete(std::span<const uint8_t> key) {
  stats_.deletes++;
  std::optional<Location> loc = Find(key);
  if (!loc.has_value()) {
    return Status::NotFound();
  }
  RemoveAt(*loc);
  return Status::Ok();
}

bool HashIndex::Contains(std::span<const uint8_t> key) {
  return Find(key).has_value();
}

void HashIndex::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_store_gets_total", "GET operations", {},
                           &stats_.gets);
  registry.RegisterCounter("kvd_store_puts_total", "PUT operations", {},
                           &stats_.puts);
  registry.RegisterCounter("kvd_store_deletes_total", "DELETE operations", {},
                           &stats_.deletes);
  registry.RegisterCounter("kvd_store_chain_follows_total",
                           "Extra buckets read on collision chains", {},
                           &stats_.chain_follows);
  registry.RegisterCounter("kvd_store_secondary_false_hits_total",
                           "Secondary-hash matches with key mismatch", {},
                           &stats_.secondary_false_hits);
  registry.RegisterGauge("kvd_store_chained_buckets", "Live chained buckets", {},
                         [this] {
                           return static_cast<double>(stats_.chained_buckets_live);
                         });
  registry.RegisterGauge("kvd_store_kvs", "Live key-value pairs", {},
                         [this] { return static_cast<double>(num_kvs_); });
  registry.RegisterGauge("kvd_store_payload_bytes", "Stored key+value bytes", {},
                         [this] { return static_cast<double>(payload_bytes_); });
  registry.RegisterGauge("kvd_store_buckets", "Hash index buckets", {},
                         [this] { return static_cast<double>(num_buckets_); });
  registry.RegisterGauge("kvd_store_utilization",
                         "Payload bytes over KVS region size", {},
                         [this] { return Utilization(); });
}

}  // namespace kvd
