// Public entry points of the KV-Direct library.
//
// KvDirectServer assembles the full system of paper Figure 2/4: host memory
// holding the hash index and slab heap, the PCIe DMA engine, the NIC DRAM
// load dispatcher, the reservation station, the KV processor, and the 40 GbE
// network model — all driven by one discrete-event simulator.
//
// Client provides remote direct key-value access: single synchronous
// operations for convenience, and batched pipelined operations (the paper's
// client-side network batching, Figure 15) for throughput.
#ifndef SRC_CORE_KV_DIRECT_H_
#define SRC_CORE_KV_DIRECT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/common/units.h"
#include "src/core/kv_processor.h"
#include "src/core/update_functions.h"
#include "src/dram/load_dispatcher.h"
#include "src/dram/nic_dram.h"
#include "src/fault/fault_injector.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"
#include "src/net/network_model.h"
#include "src/net/wire_format.h"
#include "src/obs/event_tracer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {

struct ServerConfig {
  // KVS region in host memory (the paper reserves 64 GiB; scaled here).
  uint64_t kvs_memory_bytes = 64 * kMiB;
  double hash_index_ratio = 0.5;
  uint32_t inline_threshold_bytes = 10;
  uint32_t min_slab_bytes = 32;
  uint32_t max_slab_bytes = 512;

  DmaEngineConfig pcie;
  NicDramConfig nic_dram;
  DispatchPolicy dispatch_policy = DispatchPolicy::kHybrid;
  // < 0 selects the analytically optimal ratio for the workload skew.
  double dispatch_ratio = -1.0;
  bool long_tail_workload = false;

  NetworkConfig network;
  KvProcessorConfig processor;

  // Record simulator events (DMA, dispatch, station, network) for Chrome
  // trace export. Off by default; costs one branch per hook when disabled.
  bool enable_tracing = false;

  // Per-request tracing (src/obs/request_trace.h): trace contexts created at
  // client send, propagated through every layer, aggregated into the latency
  // breakdown, the SLO monitor, and the flight recorder. Off by default; when
  // disabled every hook is one branch on a zero handle.
  bool enable_request_tracing = false;
  SloConfig slo;
  FlightRecorderConfig flight;

  // Deterministic fault injection across the network, PCIe, and NIC DRAM
  // models (src/fault). All-zero probabilities (the default) inject nothing.
  FaultPlan faults;
  // Server-side idempotent-replay cache for the framed request path: the
  // most recent N responses are kept so a retransmitted request is answered
  // from the cache instead of re-executing its (non-idempotent) operations.
  uint32_t replay_cache_entries = 4096;
  // Completed replay entries younger than this are never evicted, even when
  // the cache is over budget: a retransmission of a just-answered frame may
  // still be in flight, and evicting its entry would re-execute the ops.
  // The cache may temporarily exceed `replay_cache_entries` to honor this.
  SimTime replay_retain_time = 100 * kMillisecond;

  // Tunes hash_index_ratio / inline_threshold / dispatch_ratio for a workload
  // of `kv_bytes` key+value pairs, as §5.2.1 does before each benchmark.
  void AutoTune(uint32_t kv_bytes, bool long_tail);
};

class KvDirectServer {
 public:
  // By default the server owns its simulator. Passing `external_sim` puts
  // several servers on one clock — required when they exchange messages
  // (MultiNicServer shards, src/replica replication groups).
  explicit KvDirectServer(const ServerConfig& config,
                          Simulator* external_sim = nullptr);

  KvDirectServer(const KvDirectServer&) = delete;
  KvDirectServer& operator=(const KvDirectServer&) = delete;

  // --- timed paths ---
  // Submits one operation directly to the KV processor (no network).
  void Submit(KvOperation op, KvProcessor::Completion done);
  // Delivers a client request packet; `respond` fires with the encoded
  // response payload once every operation in the packet has retired.
  // `traced_sequence` (if nonzero) resolves each op's trace handle via the
  // request tracer's packet registry and stamps server-side checkpoints.
  void DeliverPacket(std::vector<uint8_t> payload,
                     std::function<void(std::vector<uint8_t>)> respond,
                     uint64_t traced_sequence = 0);
  // Delivers a *framed* request ([sequence | checksum | payload]). Frames
  // that fail the checksum are dropped (the client retransmits on timeout);
  // a sequence seen before is answered from the replay cache without
  // re-executing, making retransmission idempotent. `respond` fires with the
  // framed response echoing the request sequence.
  void DeliverFrame(std::vector<uint8_t> packet,
                    std::function<void(std::vector<uint8_t>)> respond);

  // --- untimed convenience (warm-up fills, tests) ---
  KvResultMessage Execute(const KvOperation& op);
  Status Load(std::span<const uint8_t> key, std::span<const uint8_t> value);

  // --- component access for benchmarks and diagnostics ---
  Simulator& simulator() { return sim_; }
  KvProcessor& processor() { return *processor_; }
  HashIndex& index() { return *index_; }
  SlabAllocator& allocator() { return *allocator_; }
  LoadDispatcher& dispatcher() { return *dispatcher_; }
  DmaEngine& dma() { return *dma_; }
  NicDram& nic_dram() { return *nic_dram_; }
  NetworkModel& network() { return *network_; }
  UpdateFunctionRegistry& registry() { return registry_; }
  FaultInjector& faults() { return *fault_; }
  const ServerConfig& config() const { return config_; }
  uint64_t replayed_responses() const { return replayed_responses_; }
  uint64_t corrupt_frames() const { return corrupt_frames_; }
  uint64_t stale_retransmits() const { return stale_retransmits_; }
  // Hands each client a disjoint 2^40-sequence space so frames from
  // different clients never collide in the replay cache.
  uint64_t AcquireClientSequenceBase() { return ++next_client_id_ << 40; }
  const AccessStats& memory_stats() const { return direct_engine_->stats(); }
  // Every subsystem's counters, gauges, and histograms (Prometheus / JSON /
  // plain-text exposition).
  const MetricRegistry& metrics() const { return metrics_; }
  // Simulator event trace; enable via ServerConfig::enable_tracing or
  // tracer().set_enabled(true).
  EventTracer& tracer() { return tracer_; }

  // Request-tracing consumers. `request_tracer()` returns the *active* tracer
  // — the owned one, or the external one after UseRequestTracer (replication
  // groups share one tracer per group).
  RequestTracer& request_tracer() { return *active_request_tracer_; }
  FlightRecorder& flight_recorder() { return *active_flight_; }
  LatencyBreakdown& breakdown() { return breakdown_; }
  SloMonitor& slo_monitor() { return slo_monitor_; }
  // Re-points every component (and the framed delivery path) at an external
  // tracer/recorder. The owned instances stay alive, so registered metric
  // readers never dangle.
  void UseRequestTracer(RequestTracer* tracer);
  void UseFlightRecorder(FlightRecorder* recorder);

 private:
  ServerConfig config_;
  // Null when running on an external (shared) simulator; sim_ aliases either
  // the owned instance or the external one. Declared before every member
  // that captures Simulator& at construction.
  std::unique_ptr<Simulator> owned_sim_;
  Simulator& sim_;
  MetricRegistry metrics_;
  EventTracer tracer_{sim_};
  RequestTracer request_tracer_{sim_};
  LatencyBreakdown breakdown_;
  SloMonitor slo_monitor_{sim_};
  FlightRecorder flight_recorder_{sim_};
  RequestTracer* active_request_tracer_ = &request_tracer_;
  FlightRecorder* active_flight_ = &flight_recorder_;
  UpdateFunctionRegistry registry_;
  std::unique_ptr<HostMemory> memory_;
  std::unique_ptr<DirectEngine> direct_engine_;
  std::unique_ptr<TraceRecordingEngine> trace_engine_;
  std::unique_ptr<SlabAllocator> allocator_;
  std::unique_ptr<HashIndex> index_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<DmaEngine> dma_;
  std::unique_ptr<NicDram> nic_dram_;
  std::unique_ptr<LoadDispatcher> dispatcher_;
  std::unique_ptr<NetworkModel> network_;
  std::unique_ptr<KvProcessor> processor_;

  // Replay-dedup cache: framed responses by sequence, evicted FIFO — except
  // that in-flight entries and entries completed less than
  // `replay_retain_time` ago are never evicted (see ServerConfig).
  struct ReplayEntry {
    bool done = false;
    SimTime done_at = 0;            // completion time, valid when done
    std::vector<uint8_t> response;  // framed, ready to resend
  };
  std::unordered_map<uint64_t, ReplayEntry> replay_;
  std::deque<uint64_t> replay_order_;
  uint64_t next_client_id_ = 0;
  uint64_t replayed_responses_ = 0;
  uint64_t corrupt_frames_ = 0;
  uint64_t stale_retransmits_ = 0;
};

// A client endpoint on the simulated network. Synchronous calls advance the
// simulator until their response arrives, so examples read like ordinary
// key-value code while every microsecond is accounted for.
class Client {
 public:
  // End-to-end reliability: sequence-numbered, checksummed frames with
  // per-packet timeouts, exponential-backoff retransmission (same sequence,
  // deduplicated server-side), and op-level backoff/retry on kBusy.
  struct RetryPolicy {
    // Disable to send raw unframed packets and assume a lossless wire (the
    // pre-reliability behavior; required when faults are enabled == false
    // only for byte-exact wire accounting in benchmarks).
    bool enabled = true;
    SimTime timeout = 500 * kMicrosecond;  // doubles per retransmission
    uint32_t max_attempts = 8;             // transmissions per frame; then fatal
    SimTime busy_backoff = 10 * kMicrosecond;  // doubles per kBusy round
    uint32_t max_busy_retries = 16;            // kBusy re-send rounds; then fatal
  };

  struct Stats {
    uint64_t packets_sent = 0;         // distinct frames (first transmissions)
    uint64_t retransmits = 0;          // timeout-driven re-sends
    uint64_t busy_retries = 0;         // ops re-sent after a kBusy response
    uint64_t corrupt_responses = 0;    // responses failing checksum/decode
    uint64_t duplicate_responses = 0;  // responses for already-completed frames
  };

  struct Options {
    uint32_t batch_payload_bytes = 4096;  // packet budget for batched calls
    // 1 disables client-side batching entirely (Figure 15/17 ablation).
    uint32_t max_ops_per_packet = 0xffffffff;
    bool enable_compression = true;
    RetryPolicy retry;
  };

  explicit Client(KvDirectServer& server) : Client(server, Options()) {}
  Client(KvDirectServer& server, Options options);

  // --- single synchronous operations ---
  Result<std::vector<uint8_t>> Get(std::span<const uint8_t> key);
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);
  // Atomic scalar update (e.g. fetch-and-add); returns the original value.
  Result<uint64_t> Update(std::span<const uint8_t> key, uint64_t param,
                          uint16_t function_id = kFnAddU64,
                          uint8_t element_width = 8);
  // Vector operations (Table 1).
  Result<std::vector<uint8_t>> UpdateVectorWithScalar(std::span<const uint8_t> key,
                                                      uint64_t param,
                                                      uint16_t function_id,
                                                      uint8_t element_width);
  Result<std::vector<uint8_t>> UpdateVectorWithVector(std::span<const uint8_t> key,
                                                      std::span<const uint8_t> params,
                                                      uint16_t function_id,
                                                      uint8_t element_width);
  Result<uint64_t> Reduce(std::span<const uint8_t> key, uint64_t initial,
                          uint16_t function_id, uint8_t element_width);
  Result<std::vector<uint8_t>> Filter(std::span<const uint8_t> key, uint64_t param,
                                      uint16_t function_id, uint8_t element_width);

  // --- batched pipeline ---
  // Queues an operation for the next Flush(). Returns the index of its result.
  size_t Enqueue(KvOperation op);
  // Sends all queued operations (splitting across packets as needed), runs
  // the simulation until every response arrives, and returns results in
  // enqueue order.
  std::vector<KvResultMessage> Flush();

  uint64_t packets_sent() const { return stats_.packets_sent; }
  const Stats& stats() const { return stats_; }

 private:
  struct FlushState;
  struct PacketCtx;

  KvResultMessage Call(KvOperation op);
  std::vector<KvResultMessage> FlushReliable(std::vector<KvOperation> ops);
  std::vector<KvResultMessage> FlushUnreliable(std::vector<KvOperation> ops);
  // Packs ops[indices...] into framed packets and transmits each.
  void SendBatch(const std::vector<KvOperation>& ops,
                 const std::vector<size_t>& indices,
                 const std::shared_ptr<FlushState>& flush);
  // One transmission attempt plus its retransmission timer.
  void TransmitPacket(const std::shared_ptr<PacketCtx>& ctx);
  void OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                  std::vector<uint8_t> packet);
  // Advances the simulator by `duration` (backoff waits).
  void RunFor(SimTime duration);

  KvDirectServer& server_;
  Options options_;
  std::vector<KvOperation> pending_;
  uint64_t next_sequence_;
  Stats stats_;
};

}  // namespace kvd

#endif  // SRC_CORE_KV_DIRECT_H_
