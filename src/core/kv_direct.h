// Public entry points of the KV-Direct library.
//
// The layered architecture (DESIGN.md §11):
//   - NodeRuntime (src/core/node_runtime.h) assembles the per-node subsystem
//     stack of paper Figure 2/4 — memory, index, allocator, DMA, NIC DRAM,
//     dispatcher, processor, network — on one simulator.
//   - The transport layer (src/transport) owns reliability: FrameEndpoint
//     terminates framed requests server-side (checksum, replay dedup);
//     ReliableSender drives client-side retransmission.
//   - KvDirectServer composes one runtime with one frame endpoint; Client is
//     the matching single-server KvEndpoint.
//
// Client provides remote direct key-value access: single synchronous
// operations for convenience, and batched pipelined operations (the paper's
// client-side network batching, Figure 15) for throughput.
#ifndef SRC_CORE_KV_DIRECT_H_
#define SRC_CORE_KV_DIRECT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/units.h"
#include "src/core/node_runtime.h"
#include "src/net/wire_format.h"
#include "src/transport/frame_endpoint.h"
#include "src/transport/kv_endpoint.h"
#include "src/transport/reliable_sender.h"

namespace kvd {

class KvDirectServer {
 public:
  // By default the server owns its simulator. Passing `external_sim` puts
  // several servers on one clock — required when they exchange messages
  // (MultiNicServer shards, src/replica replication groups).
  explicit KvDirectServer(const ServerConfig& config,
                          Simulator* external_sim = nullptr);

  KvDirectServer(const KvDirectServer&) = delete;
  KvDirectServer& operator=(const KvDirectServer&) = delete;

  // --- timed paths ---
  // Submits one operation directly to the KV processor (no network). The
  // explicit-class overload lets callers mark control traffic (replication
  // applies) exempt from admission shedding.
  void Submit(KvOperation op, KvProcessor::Completion done);
  void Submit(KvOperation op, KvProcessor::Completion done, OpClass cls);
  // Delivers a client request packet; `respond` fires with the encoded
  // response payload once every operation in the packet has retired.
  // `traced_sequence` (if nonzero) resolves each op's trace handle via the
  // request tracer's packet registry and stamps server-side checkpoints.
  void DeliverPacket(std::vector<uint8_t> payload,
                     std::function<void(std::vector<uint8_t>)> respond,
                     uint64_t traced_sequence = 0);
  // Delivers a *framed* request ([sequence | checksum | payload]). Frames
  // that fail the checksum are dropped (the client retransmits on timeout);
  // a sequence seen before is answered from the replay cache without
  // re-executing, making retransmission idempotent. `respond` fires with the
  // framed response echoing the request sequence.
  void DeliverFrame(std::vector<uint8_t> packet,
                    std::function<void(std::vector<uint8_t>)> respond);

  // --- untimed convenience (warm-up fills, tests) ---
  KvResultMessage Execute(const KvOperation& op);
  Status Load(std::span<const uint8_t> key, std::span<const uint8_t> value);

  // --- component access for benchmarks and diagnostics ---
  NodeRuntime& runtime() { return runtime_; }
  Simulator& simulator() { return runtime_.simulator(); }
  KvProcessor& processor() { return runtime_.processor(); }
  HashIndex& index() { return runtime_.index(); }
  SlabAllocator& allocator() { return runtime_.allocator(); }
  LoadDispatcher& dispatcher() { return runtime_.dispatcher(); }
  DmaEngine& dma() { return runtime_.dma(); }
  NicDram& nic_dram() { return runtime_.nic_dram(); }
  NetworkModel& network() { return runtime_.network(); }
  UpdateFunctionRegistry& registry() { return runtime_.registry(); }
  FaultInjector& faults() { return runtime_.faults(); }
  const ServerConfig& config() const { return runtime_.config(); }
  uint64_t replayed_responses() const { return endpoint_.stats().replayed_responses; }
  uint64_t corrupt_frames() const { return endpoint_.stats().corrupt_frames; }
  uint64_t stale_retransmits() const { return endpoint_.stats().stale_retransmits; }
  const FrameEndpoint& frame_endpoint() const { return endpoint_; }
  // Hands each client a disjoint 2^40-sequence space so frames from
  // different clients never collide in the replay cache.
  uint64_t AcquireClientSequenceBase() { return ++next_client_id_ << 40; }
  const AccessStats& memory_stats() const { return runtime_.memory_stats(); }
  // Every subsystem's counters, gauges, and histograms (Prometheus / JSON /
  // plain-text exposition).
  const MetricRegistry& metrics() const { return runtime_.metrics(); }
  // Simulator event trace; enable via ServerConfig::enable_tracing or
  // tracer().set_enabled(true).
  EventTracer& tracer() { return runtime_.tracer(); }

  // Request-tracing consumers. `request_tracer()` returns the *active* tracer
  // — the owned one, or the external one after UseRequestTracer (replication
  // groups share one tracer per group).
  RequestTracer& request_tracer() { return runtime_.request_tracer(); }
  FlightRecorder& flight_recorder() { return runtime_.flight_recorder(); }
  LatencyBreakdown& breakdown() { return runtime_.breakdown(); }
  SloMonitor& slo_monitor() { return runtime_.slo_monitor(); }
  // Re-points every component (and the framed delivery path) at an external
  // tracer/recorder. The owned instances stay alive, so registered metric
  // readers never dangle.
  void UseRequestTracer(RequestTracer* tracer) { runtime_.UseRequestTracer(tracer); }
  void UseFlightRecorder(FlightRecorder* recorder) { runtime_.UseFlightRecorder(recorder); }

 private:
  NodeRuntime runtime_;
  FrameEndpoint endpoint_;
  uint64_t next_client_id_ = 0;
};

// A client endpoint on the simulated network. Synchronous calls advance the
// simulator until their response arrives, so examples read like ordinary
// key-value code while every microsecond is accounted for.
class Client : public KvEndpoint {
 public:
  // End-to-end reliability: sequence-numbered, checksummed frames with
  // per-packet timeouts, exponential-backoff retransmission (same sequence,
  // deduplicated server-side), and op-level backoff/retry on kBusy.
  struct RetryPolicy {
    // Disable to send raw unframed packets and assume a lossless wire (the
    // pre-reliability behavior; required when faults are enabled == false
    // only for byte-exact wire accounting in benchmarks).
    bool enabled = true;
    SimTime timeout = 500 * kMicrosecond;  // doubles per retransmission
    // Transmissions per frame; exhausting them fails the frame's operations
    // with kTimedOut instead of retrying forever.
    uint32_t max_attempts = 8;
    SimTime busy_backoff = 10 * kMicrosecond;  // doubles per kBusy round
    // kBusy re-send rounds; exhausting them yields kTimedOut for the
    // still-busy operations.
    uint32_t max_busy_retries = 16;
    // Per-op latency budget: each flushed op gets deadline = now + op_budget
    // (unless the caller stamped one), carried on the wire and enforced at
    // every layer (sender retransmissions, server admission, dequeue,
    // retirement). 0 = no deadlines (the pre-overload-control behavior).
    SimTime op_budget = 0;
    // Decorrelated jitter on retransmission backoff (see ReliableSender).
    bool jitter = true;
    // Token-bucket retry budget shared across this client's packets;
    // 0 disables (see ReliableSender::RetryPolicy).
    uint32_t retry_budget = 0;
    double retry_refill_per_success = 0.1;
  };

  // packets_sent: distinct frames (first transmissions); retransmits:
  // timeout-driven re-sends; busy_retries: ops re-sent after kBusy;
  // corrupt_responses / duplicate_responses: dropped response frames.
  using Stats = ReliableSender::Stats;

  struct Options {
    uint32_t batch_payload_bytes = 4096;  // packet budget for batched calls
    // 1 disables client-side batching entirely (Figure 15/17 ablation).
    uint32_t max_ops_per_packet = 0xffffffff;
    bool enable_compression = true;
    RetryPolicy retry;
  };

  explicit Client(KvDirectServer& server) : Client(server, Options()) {}
  Client(KvDirectServer& server, Options options);

  // --- single synchronous operations ---
  Result<std::vector<uint8_t>> Get(std::span<const uint8_t> key);
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);
  // Atomic scalar update (e.g. fetch-and-add); returns the original value.
  Result<uint64_t> Update(std::span<const uint8_t> key, uint64_t param,
                          uint16_t function_id = kFnAddU64,
                          uint8_t element_width = 8);
  // Vector operations (Table 1).
  Result<std::vector<uint8_t>> UpdateVectorWithScalar(std::span<const uint8_t> key,
                                                      uint64_t param,
                                                      uint16_t function_id,
                                                      uint8_t element_width);
  Result<std::vector<uint8_t>> UpdateVectorWithVector(std::span<const uint8_t> key,
                                                      std::span<const uint8_t> params,
                                                      uint16_t function_id,
                                                      uint8_t element_width);
  Result<uint64_t> Reduce(std::span<const uint8_t> key, uint64_t initial,
                          uint16_t function_id, uint8_t element_width);
  Result<std::vector<uint8_t>> Filter(std::span<const uint8_t> key, uint64_t param,
                                      uint16_t function_id, uint8_t element_width);

  // --- batched pipeline (KvEndpoint) ---
  // Queues an operation for the next Flush(). Returns the index of its result.
  size_t Enqueue(KvOperation op) override;
  // Sends all queued operations (splitting across packets as needed), runs
  // the simulation until every response arrives, and returns results in
  // enqueue order.
  std::vector<KvResultMessage> Flush() override;

  ReliableSender::Stats endpoint_stats() const override { return stats_; }
  SimTime now() const override { return server_.simulator().Now(); }
  bool Step() override { return server_.simulator().Step(); }
  // Raw datagram path (no framing, no retry): the closed-loop bench driver.
  bool SubmitPacket(std::vector<uint8_t> ops_payload,
                    std::function<void()> done) override;

  uint64_t packets_sent() const { return stats_.packets_sent; }
  const Stats& stats() const { return stats_; }

 private:
  struct FlushState;
  struct PacketCtx;

  KvResultMessage Call(KvOperation op);
  std::vector<KvResultMessage> FlushReliable(std::vector<KvOperation> ops);
  std::vector<KvResultMessage> FlushUnreliable(std::vector<KvOperation> ops);
  // Packs ops[indices...] into framed packets and hands each to the sender.
  void SendBatch(const std::vector<KvOperation>& ops,
                 const std::vector<size_t>& indices,
                 const std::shared_ptr<FlushState>& flush);
  void OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                  std::vector<uint8_t> packet);
  // ReliableSender hooks: one wire round trip; retry exhaustion.
  void Wire(const ReliableSender::PacketPtr& packet);
  void OnFail(const ReliableSender::PacketPtr& packet);
  // Advances the simulator by `duration` (backoff waits).
  void RunFor(SimTime duration);

  KvDirectServer& server_;
  Options options_;
  std::vector<KvOperation> pending_;
  uint64_t next_sequence_;
  Stats stats_;
  ReliableSender sender_;
};

}  // namespace kvd

#endif  // SRC_CORE_KV_DIRECT_H_
