#include "src/core/update_functions.h"

#include <bit>
#include <cstring>

#include "src/common/assert.h"

namespace kvd {
namespace {

float AsFloat(uint64_t bits) {
  float f;
  const auto u = static_cast<uint32_t>(bits);
  std::memcpy(&f, &u, 4);
  return f;
}

uint64_t FromFloat(float f) {
  uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}

}  // namespace

UpdateFunctionRegistry::UpdateFunctionRegistry() {
  functions_[kFnAddU64] = [](uint64_t e, uint64_t p) { return e + p; };
  functions_[kFnAddF32] = [](uint64_t e, uint64_t p) {
    return FromFloat(AsFloat(e) + AsFloat(p));
  };
  functions_[kFnMaxU64] = [](uint64_t e, uint64_t p) { return e > p ? e : p; };
  functions_[kFnMinU64] = [](uint64_t e, uint64_t p) { return e < p ? e : p; };
  functions_[kFnXorU64] = [](uint64_t e, uint64_t p) { return e ^ p; };
  // Compare-and-swap over 32-bit values: param packs (expected << 32) | new.
  functions_[kFnCasU64] = [](uint64_t e, uint64_t p) {
    const uint64_t expected = p >> 32;
    const uint64_t replacement = p & 0xffffffffu;
    return e == expected ? replacement : e;
  };
  predicates_[kFnNonZero] = [](uint64_t e, uint64_t) { return e != 0; };
  predicates_[kFnGreater] = [](uint64_t e, uint64_t p) { return e > p; };
}

void UpdateFunctionRegistry::RegisterFunction(uint16_t id, ElementFunction fn) {
  KVD_CHECK_MSG(id >= kFnFirstUserFunction, "user function ids start at 64");
  functions_[id] = std::move(fn);
}

void UpdateFunctionRegistry::RegisterPredicate(uint16_t id, ElementPredicate fn) {
  KVD_CHECK_MSG(id >= kFnFirstUserFunction, "user function ids start at 64");
  predicates_[id] = std::move(fn);
}

Status UpdateFunctionRegistry::ValidateWidth(std::span<const uint8_t> value,
                                             uint8_t element_width) {
  if (element_width != 1 && element_width != 2 && element_width != 4 &&
      element_width != 8) {
    return Status::InvalidArgument("element width must be 1, 2, 4, or 8");
  }
  if (value.size() % element_width != 0) {
    return Status::InvalidArgument("value size not a multiple of element width");
  }
  return Status::Ok();
}

uint64_t UpdateFunctionRegistry::LoadElement(std::span<const uint8_t> value,
                                             size_t index, uint8_t width) {
  uint64_t element = 0;
  std::memcpy(&element, value.data() + index * width, width);
  return element;
}

void UpdateFunctionRegistry::StoreElement(std::span<uint8_t> value, size_t index,
                                          uint8_t width, uint64_t element) {
  std::memcpy(value.data() + index * width, &element, width);
}

Result<uint64_t> UpdateFunctionRegistry::ApplyScalar(uint16_t id,
                                                     std::span<uint8_t> value,
                                                     uint64_t param,
                                                     uint8_t element_width) const {
  if (Status status = ValidateWidth(value, element_width); !status.ok()) {
    return status;
  }
  if (value.size() != element_width) {
    return Status::InvalidArgument("scalar update on non-scalar value");
  }
  const auto it = functions_.find(id);
  if (it == functions_.end()) {
    return Status::InvalidArgument("unregistered update function");
  }
  const uint64_t original = LoadElement(value, 0, element_width);
  StoreElement(value, 0, element_width, it->second(original, param));
  return original;
}

Status UpdateFunctionRegistry::ApplyScalarToVector(uint16_t id,
                                                   std::span<uint8_t> value,
                                                   uint64_t param,
                                                   uint8_t element_width) const {
  if (Status status = ValidateWidth(value, element_width); !status.ok()) {
    return status;
  }
  const auto it = functions_.find(id);
  if (it == functions_.end()) {
    return Status::InvalidArgument("unregistered update function");
  }
  const size_t count = value.size() / element_width;
  for (size_t i = 0; i < count; i++) {
    StoreElement(value, i, element_width,
                 it->second(LoadElement(value, i, element_width), param));
  }
  return Status::Ok();
}

Status UpdateFunctionRegistry::ApplyVectorToVector(uint16_t id,
                                                   std::span<uint8_t> value,
                                                   std::span<const uint8_t> params,
                                                   uint8_t element_width) const {
  if (Status status = ValidateWidth(value, element_width); !status.ok()) {
    return status;
  }
  if (params.size() != value.size()) {
    return Status::InvalidArgument("parameter vector size mismatch");
  }
  const auto it = functions_.find(id);
  if (it == functions_.end()) {
    return Status::InvalidArgument("unregistered update function");
  }
  const size_t count = value.size() / element_width;
  for (size_t i = 0; i < count; i++) {
    StoreElement(value, i, element_width,
                 it->second(LoadElement(value, i, element_width),
                            LoadElement(params, i, element_width)));
  }
  return Status::Ok();
}

Result<uint64_t> UpdateFunctionRegistry::Reduce(uint16_t id,
                                                std::span<const uint8_t> value,
                                                uint64_t initial,
                                                uint8_t element_width) const {
  if (Status status = ValidateWidth(value, element_width); !status.ok()) {
    return status;
  }
  const auto it = functions_.find(id);
  if (it == functions_.end()) {
    return Status::InvalidArgument("unregistered update function");
  }
  uint64_t acc = initial;
  const size_t count = value.size() / element_width;
  for (size_t i = 0; i < count; i++) {
    acc = it->second(LoadElement(value, i, element_width), acc);
  }
  return acc;
}

Result<std::vector<uint8_t>> UpdateFunctionRegistry::Filter(
    uint16_t id, std::span<const uint8_t> value, uint64_t param,
    uint8_t element_width) const {
  if (Status status = ValidateWidth(value, element_width); !status.ok()) {
    return status;
  }
  const auto it = predicates_.find(id);
  if (it == predicates_.end()) {
    return Status::InvalidArgument("unregistered filter predicate");
  }
  std::vector<uint8_t> out;
  const size_t count = value.size() / element_width;
  for (size_t i = 0; i < count; i++) {
    const uint64_t element = LoadElement(value, i, element_width);
    if (it->second(element, param)) {
      const size_t at = out.size();
      out.resize(at + element_width);
      std::memcpy(out.data() + at, &element, element_width);
    }
  }
  return out;
}

}  // namespace kvd
