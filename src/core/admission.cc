#include "src/core/admission.h"

#include <cmath>

namespace kvd {

AdmissionController::Decision AdmissionController::Accept(OpClass cls,
                                                          SimTime deadline,
                                                          uint32_t backlog,
                                                          SimTime now) {
  // Fast-reject before anything else: past the overload ceiling the server
  // refuses to even look at user ops. Control traffic is exempt — shedding a
  // replication apply would diverge the backup from the log.
  if (cls != OpClass::kControl && config_.overload_backlog != 0 &&
      backlog >= config_.overload_backlog) {
    stats_.overload_rejected++;
    return Decision::kOverloaded;
  }
  if (deadline != 0 && now >= deadline) {
    stats_.deadline_shed_arrival++;
    return Decision::kDeadlineExceeded;
  }
  if (cls != OpClass::kControl && config_.max_backlog != 0 &&
      backlog >= config_.max_backlog) {
    stats_.busy_rejected++;
    return Decision::kBusy;
  }
  stats_.admitted++;
  stats_.admitted_by_class[static_cast<size_t>(cls)]++;
  return Decision::kAdmit;
}

AdmissionController::DequeueAction AdmissionController::OnDequeue(
    SimTime deadline, SimTime enqueued_at, SimTime now) {
  if (deadline != 0 && now >= deadline) {
    stats_.deadline_shed_queue++;
    return DequeueAction::kShedDeadline;
  }
  const SimTime sojourn = now > enqueued_at ? now - enqueued_at : 0;
  if (config_.codel_target != 0 && CodelShouldShed(sojourn, now)) {
    stats_.codel_shed++;
    return DequeueAction::kShedSojourn;
  }
  return DequeueAction::kProcess;
}

bool AdmissionController::CodelShouldShed(SimTime sojourn, SimTime now) {
  if (sojourn < config_.codel_target) {
    // Back under target: leave the dropping state and forget the streak.
    first_above_time_ = 0;
    dropping_ = false;
    return false;
  }
  if (!dropping_) {
    if (first_above_time_ == 0) {
      first_above_time_ = now + config_.codel_interval;
      return false;
    }
    if (now < first_above_time_) {
      return false;
    }
    // Sojourn stayed above target for a full interval: start shedding.
    dropping_ = true;
    // Resume the previous drop cadence if we were shedding recently
    // (standard CoDel refinement keeps the control law responsive across
    // short dips); otherwise restart from 1.
    drop_count_ = drop_count_ > 2 ? drop_count_ - 2 : 1;
    drop_next_ = now + static_cast<SimTime>(
                           static_cast<double>(config_.codel_interval) /
                           std::sqrt(static_cast<double>(drop_count_)));
    return true;
  }
  if (now < drop_next_) {
    return false;
  }
  drop_count_++;
  drop_next_ += static_cast<SimTime>(
      static_cast<double>(config_.codel_interval) /
      std::sqrt(static_cast<double>(drop_count_)));
  return true;
}

}  // namespace kvd
