#include "src/core/node_runtime.h"

#include <algorithm>
#include <bit>

#include "src/common/assert.h"

namespace kvd {

void ServerConfig::AutoTune(uint32_t kv_bytes, bool long_tail) {
  long_tail_workload = long_tail;
  constexpr double kSlotPacking = 0.7;  // usable fraction of hash slots
  if (kv_bytes <= kMaxInlineKvBytes) {
    // Inline everything of this size: the corpus lives in the hash index, so
    // the index takes nearly the whole region (a margin remains for chained
    // buckets and stragglers).
    inline_threshold_bytes = std::min<uint32_t>(kv_bytes, kMaxInlineKvBytes);
    hash_index_ratio = 0.9;
  } else {
    // Non-inline: the index holds one 5-byte slot per KV, the heap holds the
    // rounded slab. Ratio = index bytes : total bytes per KV, scale-free.
    inline_threshold_bytes = 10;
    const double index_per_kv = kSlotBytes / kSlotPacking;
    const double slab_per_kv =
        static_cast<double>(std::bit_ceil(kv_bytes + HashIndex::kSlabHeaderBytes));
    hash_index_ratio = index_per_kv / (index_per_kv + slab_per_kv);
  }
  // Load dispatch ratio from the paper's balance condition (§3.3.4).
  const double k = static_cast<double>(nic_dram.capacity_bytes) /
                   static_cast<double>(kvs_memory_bytes);
  const double pcie_tput =
      pcie.link.bandwidth_bytes_per_sec * pcie.num_links * 0.84;  // achievable
  dispatch_ratio = LoadDispatcher::OptimalDispatchRatio(
      pcie_tput, nic_dram.bandwidth_bytes_per_sec, std::min(k, 1.0), long_tail,
      static_cast<double>(kvs_memory_bytes) / std::max<uint32_t>(kv_bytes, 1));
}

NodeRuntime::NodeRuntime(const ServerConfig& config, Simulator* external_sim)
    : config_(config),
      owned_sim_(external_sim != nullptr ? nullptr : std::make_unique<Simulator>()),
      sim_(external_sim != nullptr ? *external_sim : *owned_sim_) {
  HashIndexConfig index_config;
  index_config.memory_base = 0;
  index_config.memory_size = config.kvs_memory_bytes;
  index_config.hash_index_ratio = config.hash_index_ratio;
  index_config.inline_threshold_bytes = config.inline_threshold_bytes;
  index_config.min_slab_bytes = config.min_slab_bytes;
  index_config.max_slab_bytes = config.max_slab_bytes;
  const auto regions = index_config.ComputeRegions();

  memory_ = std::make_unique<HostMemory>(config.kvs_memory_bytes);
  direct_engine_ = std::make_unique<DirectEngine>(*memory_);
  trace_engine_ = std::make_unique<TraceRecordingEngine>(*direct_engine_);

  SlabConfig slab_config;
  slab_config.region_base = regions.heap_base;
  slab_config.region_size = regions.heap_size;
  slab_config.min_slab_bytes = config.min_slab_bytes;
  slab_config.max_slab_bytes = config.max_slab_bytes;
  allocator_ = std::make_unique<SlabAllocator>(slab_config);

  index_ = std::make_unique<HashIndex>(*trace_engine_, *allocator_, index_config);

  fault_ = std::make_unique<FaultInjector>(config.faults);
  dma_ = std::make_unique<DmaEngine>(sim_, config.pcie);
  nic_dram_ = std::make_unique<NicDram>(sim_, config.nic_dram);

  LoadDispatcherConfig dispatch_config;
  dispatch_config.policy = config.dispatch_policy;
  dispatch_config.host_memory_bytes = config.kvs_memory_bytes;
  dispatch_config.nic_dram_bytes = config.nic_dram.capacity_bytes;
  if (config.dispatch_ratio >= 0) {
    dispatch_config.dispatch_ratio = config.dispatch_ratio;
  } else {
    const double k = std::min(1.0, static_cast<double>(config.nic_dram.capacity_bytes) /
                                       static_cast<double>(config.kvs_memory_bytes));
    dispatch_config.dispatch_ratio = LoadDispatcher::OptimalDispatchRatio(
        config.pcie.link.bandwidth_bytes_per_sec * config.pcie.num_links * 0.84,
        config.nic_dram.bandwidth_bytes_per_sec, k, config.long_tail_workload);
  }
  dispatcher_ = std::make_unique<LoadDispatcher>(sim_, *dma_, *nic_dram_,
                                                 dispatch_config);

  network_ = std::make_unique<NetworkModel>(sim_, config.network);

  processor_ = std::make_unique<KvProcessor>(sim_, *index_, *trace_engine_,
                                             *dispatcher_, registry_,
                                             config.processor);
  processor_->AttachSlabSyncStats(&allocator_->sync_stats());

  // Fault wiring: one injector shared by every site so the plan's per-site
  // streams stay independent of which subsystems are active.
  dma_->SetFaultInjector(fault_.get());
  nic_dram_->SetFaultInjector(fault_.get());
  network_->SetFaultInjector(fault_.get());

  // Request tracing: the tracer feeds the breakdown, the SLO monitor, and
  // the flight-recorder ring; SLO breaches fire the recorder. Components get
  // the pointers unconditionally (a zero handle short-circuits every hook).
  request_tracer_.set_enabled(config.enable_request_tracing);
  request_tracer_.SetBreakdown(&breakdown_);
  slo_monitor_.Configure(config.slo);
  request_tracer_.SetSloMonitor(&slo_monitor_);
  flight_recorder_.Configure(config.flight);
  flight_recorder_.set_enabled(config.enable_request_tracing);
  flight_recorder_.SetRequestTracer(&request_tracer_);
  flight_recorder_.SetMetricRegistry(&metrics_);
  flight_recorder_.SetEventTracer(&tracer_);
  request_tracer_.set_on_complete(
      [this](const OpTrace& trace) { active_flight_->OnTraceComplete(trace); });
  slo_monitor_.set_on_breach([this](const std::string& detail) {
    active_flight_->Trigger(FlightTrigger::kSloBreach, detail);
  });
  processor_->SetRequestTracer(&request_tracer_);
  processor_->SetFlightRecorder(&flight_recorder_);
  dispatcher_->SetRequestTracer(&request_tracer_);
  dispatcher_->SetFlightRecorder(&flight_recorder_);
  dma_->SetRequestTracer(&request_tracer_);
  nic_dram_->SetRequestTracer(&request_tracer_);
  network_->SetRequestTracer(&request_tracer_);
  fault_->SetFlightRecorder(&flight_recorder_);
  if (config.enable_request_tracing) {
    // Registered only when tracing is on, so the default metric exposition
    // is byte-identical to the untraced build.
    request_tracer_.RegisterMetrics(metrics_);
    breakdown_.RegisterMetrics(metrics_);
    slo_monitor_.RegisterMetrics(metrics_);
    flight_recorder_.RegisterMetrics(metrics_);
  }

  // Observability: every subsystem registers readers over its live stats into
  // the shared registry and learns about the tracer. Neither changes timing.
  tracer_.set_enabled(config.enable_tracing);
  metrics_.RegisterCounter("kvd_events_dropped_total",
                           "Events dropped at the EventTracer capacity limit",
                           {}, [this] { return tracer_.dropped(); });
  fault_->RegisterMetrics(metrics_);
  fault_->SetTracer(&tracer_);
  processor_->RegisterMetrics(metrics_);
  processor_->SetTracer(&tracer_);
  index_->RegisterMetrics(metrics_);
  allocator_->RegisterMetrics(metrics_);
  allocator_->SetTracer(&tracer_);
  dispatcher_->RegisterMetrics(metrics_);
  dispatcher_->SetTracer(&tracer_);
  dma_->RegisterMetrics(metrics_);
  dma_->SetTracer(&tracer_);
  nic_dram_->RegisterMetrics(metrics_);
  nic_dram_->SetTracer(&tracer_);
  network_->RegisterMetrics(metrics_);
  network_->SetTracer(&tracer_);
}

void NodeRuntime::UseRequestTracer(RequestTracer* tracer) {
  KVD_CHECK(tracer != nullptr);
  active_request_tracer_ = tracer;
  processor_->SetRequestTracer(tracer);
  dispatcher_->SetRequestTracer(tracer);
  dma_->SetRequestTracer(tracer);
  nic_dram_->SetRequestTracer(tracer);
  network_->SetRequestTracer(tracer);
}

void NodeRuntime::UseFlightRecorder(FlightRecorder* recorder) {
  KVD_CHECK(recorder != nullptr);
  active_flight_ = recorder;
  processor_->SetFlightRecorder(recorder);
  dispatcher_->SetFlightRecorder(recorder);
  fault_->SetFlightRecorder(recorder);
}

}  // namespace kvd
