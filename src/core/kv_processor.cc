#include "src/core/kv_processor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {
namespace {

ResultCode ToResultCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ResultCode::kOk;
    case StatusCode::kNotFound:
      return ResultCode::kNotFound;
    case StatusCode::kOutOfMemory:
      return ResultCode::kOutOfMemory;
    case StatusCode::kResourceBusy:
      return ResultCode::kBusy;
    default:
      return ResultCode::kInvalidArgument;
  }
}

// Legacy merge: config.max_backlog predates AdmissionConfig and keeps
// working as an alias for admission.max_backlog.
AdmissionConfig MergedAdmission(const KvProcessorConfig& config) {
  AdmissionConfig merged = config.admission;
  if (merged.max_backlog == 0) {
    merged.max_backlog = config.max_backlog;
  }
  return merged;
}

}  // namespace

KvProcessor::KvProcessor(Simulator& sim, HashIndex& index,
                         TraceRecordingEngine& engine, LoadDispatcher& dispatcher,
                         UpdateFunctionRegistry& registry,
                         const KvProcessorConfig& config)
    : sim_(sim),
      index_(index),
      engine_(engine),
      dispatcher_(dispatcher),
      registry_(registry),
      config_(config),
      station_(config.ooo),
      cycle_(static_cast<SimTime>(std::llround(1e12 / config.clock_hz))),
      admission_(MergedAdmission(config)) {
  KVD_CHECK(config.clock_hz > 0);
}

KvResultMessage KvProcessor::ExecuteFunctional(const KvOperation& op) {
  KvResultMessage result;
  switch (op.opcode) {
    case Opcode::kGet: {
      result.code = ToResultCode(index_.Get(op.key, result.value));
      break;
    }
    case Opcode::kPut: {
      result.code = ToResultCode(index_.Put(op.key, op.value));
      break;
    }
    case Opcode::kDelete: {
      result.code = ToResultCode(index_.Delete(op.key));
      break;
    }
    case Opcode::kUpdateScalar: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            Result<uint64_t> r =
                registry_.ApplyScalar(op.function_id, value, op.param,
                                      op.element_width);
            if (!r.ok()) {
              inner = r.status();
            } else {
              result.scalar = *r;
            }
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      break;
    }
    case Opcode::kUpdateScalarVector: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            inner = registry_.ApplyScalarToVector(op.function_id, value, op.param,
                                                  op.element_width);
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      if (result.code == ResultCode::kOk) {
        result.value = std::move(original);  // original vector returned
      }
      break;
    }
    case Opcode::kUpdateVector: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            inner = registry_.ApplyVectorToVector(op.function_id, value, op.value,
                                                  op.element_width);
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      if (result.code == ResultCode::kOk) {
        result.value = std::move(original);
      }
      break;
    }
    case Opcode::kReduce: {
      std::vector<uint8_t> value;
      const Status status = index_.Get(op.key, value);
      if (!status.ok()) {
        result.code = ToResultCode(status);
        break;
      }
      Result<uint64_t> r =
          registry_.Reduce(op.function_id, value, op.param, op.element_width);
      result.code = ToResultCode(r.status());
      if (r.ok()) {
        result.scalar = *r;
      }
      break;
    }
    case Opcode::kFilter: {
      std::vector<uint8_t> value;
      const Status status = index_.Get(op.key, value);
      if (!status.ok()) {
        result.code = ToResultCode(status);
        break;
      }
      Result<std::vector<uint8_t>> r =
          registry_.Filter(op.function_id, value, op.param, op.element_width);
      result.code = ToResultCode(r.status());
      if (r.ok()) {
        result.value = std::move(*r);
      }
      break;
    }
  }
  return result;
}

SimTime KvProcessor::NextCycleTime() {
  // The decoder is fully pipelined: one operation enters per clock cycle.
  next_issue_at_ = std::max(next_issue_at_, sim_.Now()) + cycle_;
  return next_issue_at_;
}

void KvProcessor::Submit(KvOperation op, Completion done) {
  const OpClass cls = ClassifyOpcode(op.opcode);
  Submit(std::move(op), std::move(done), cls);
}

void KvProcessor::Submit(KvOperation op, Completion done, OpClass cls) {
  if (op.trace != 0 && request_tracer_ != nullptr) {
    // First-write-wins: a busy-bounced retry keeps the original submit time,
    // so the queue stage honestly includes the backoff.
    request_tracer_->Point(op.trace, TracePoint::kSubmit);
  }
  const auto decision = admission_.Accept(cls, op.deadline,
                                          static_cast<uint32_t>(backlog()),
                                          sim_.Now());
  if (decision == AdmissionController::Decision::kOverloaded) {
    // Fast-reject: refused before queueing and before the decode-cycle
    // charge — a saturated server spends no pipeline time on this op.
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("proc", "overload_reject", {{"backlog", backlog()}});
    }
    NoteBusyBurst();
    sim_.ScheduleAt(sim_.Now(), [done = std::move(done)]() mutable {
      KvResultMessage result;
      result.code = ResultCode::kOverloaded;
      done(std::move(result));
    });
    return;
  }
  if (decision == AdmissionController::Decision::kDeadlineExceeded) {
    // Dead on arrival: executing it is pure waste; answer immediately so the
    // client learns to stop retrying.
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("proc", "deadline_shed_arrival", {{"op_deadline", op.deadline}});
    }
    sim_.ScheduleAt(sim_.Now(), [done = std::move(done)]() mutable {
      KvResultMessage result;
      result.code = ResultCode::kDeadlineExceeded;
      done(std::move(result));
    });
    return;
  }
  if (decision == AdmissionController::Decision::kBusy) {
    // Decode-stage backpressure: the operation is bounced with kBusy after
    // one decode cycle instead of queueing without bound; clients back off
    // and retry (graceful degradation, not silent unbounded latency).
    stats_.busy_rejected++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("proc", "busy_reject", {{"backlog", backlog()}});
    }
    NoteBusyBurst();
    sim_.ScheduleAt(NextCycleTime(), [done = std::move(done)]() mutable {
      KvResultMessage result;
      result.code = ResultCode::kBusy;
      done(std::move(result));
    });
    return;
  }
  stats_.submitted++;
  const size_t queue =
      admission_.config().class_queues ? static_cast<size_t>(cls) : 0;
  waiting_[queue].push_back(
      Waiting{std::move(op), std::move(done), cls, sim_.Now()});
  Pump();
}

void KvProcessor::NoteBusyBurst() {
  if (flight_ == nullptr || config_.busy_burst_threshold == 0) {
    return;
  }
  if (sim_.Now() >= busy_window_start_ + config_.busy_burst_window) {
    busy_window_start_ = sim_.Now();
    busy_window_count_ = 0;
  }
  if (++busy_window_count_ == config_.busy_burst_threshold) {
    flight_->Trigger(FlightTrigger::kBusyBurst,
                     "kBusy rejection burst at the admission queue");
  }
}

std::deque<KvProcessor::Waiting>* KvProcessor::NextQueue() {
  for (auto& q : waiting_) {
    if (!q.empty()) {
      return &q;
    }
  }
  return nullptr;
}

void KvProcessor::Pump() {
  while (std::deque<Waiting>* queue = NextQueue()) {
    // Dequeue-side shedding: the head op may have expired while queued, or
    // CoDel may demand a shed to drag the standing queue delay back under
    // target. Control ops are exempt — shedding a replication apply would
    // diverge the backup's store from its log.
    Waiting& head = queue->front();
    if (head.cls != OpClass::kControl) {
      const auto action = admission_.OnDequeue(head.op.deadline,
                                               head.enqueued_at, sim_.Now());
      if (action != AdmissionController::DequeueAction::kProcess) {
        const bool deadline_shed =
            action == AdmissionController::DequeueAction::kShedDeadline;
        if (deadline_shed && head.op.trace != 0 && request_tracer_ != nullptr) {
          request_tracer_->Span(head.op.trace, SpanKind::kDeadlineWait,
                                head.enqueued_at, sim_.Now(), 0);
        }
        if (tracer_ != nullptr && tracer_->enabled()) {
          tracer_->Instant("proc",
                           deadline_shed ? "deadline_shed_queue" : "codel_shed",
                           {{"sojourn_ns",
                             (sim_.Now() - head.enqueued_at) / kNanosecond}});
        }
        sim_.ScheduleAt(NextCycleTime(),
                        [done = std::move(head.done), deadline_shed]() mutable {
                          KvResultMessage result;
                          result.code = deadline_shed
                                            ? ResultCode::kDeadlineExceeded
                                            : ResultCode::kOverloaded;
                          done(std::move(result));
                        });
        queue->pop_front();
        continue;
      }
    }
    KvOperation& op = head.op;
    const KeyHash kh = HashKey(op.key);
    const uint16_t slot = kh.StationSlot();
    const uint64_t id = next_id_;
    const ReservationStation::Action action =
        station_.Admit(id, slot, kh.digest, IsWriteOpcode(op.opcode));
    if (action == ReservationStation::Action::kRejectFull) {
      return;  // retried when an operation retires
    }
    next_id_++;

    Inflight inflight;
    inflight.op = std::move(op);
    inflight.done = std::move(head.done);
    queue->pop_front();
    inflight.slot = slot;
    inflight.digest = kh.digest;
    inflight.submitted_at = sim_.Now();
    if (inflight.op.trace != 0 && request_tracer_ != nullptr) {
      request_tracer_->Point(inflight.op.trace, TracePoint::kAdmit);
    }

    // Functional execution at admission: the station guarantees per-key
    // admission order is execution order, so results are exact.
    engine_.BeginOp();
    const uint64_t sync_reads_before =
        slab_sync_stats_ != nullptr ? slab_sync_stats_->sync_dma_reads : 0;
    const uint64_t sync_writes_before =
        slab_sync_stats_ != nullptr ? slab_sync_stats_->sync_dma_writes : 0;
    inflight.result = ExecuteFunctional(inflight.op);
    if (!inflight.op.return_value) {
      inflight.result.value.clear();  // caller declined the original vector
    }
    inflight.trace = engine_.TakeTrace();
    slot_bucket_address_[slot] = index_.BucketAddressFor(inflight.op.key);
    if (slab_sync_stats_ != nullptr) {
      // Slab-pool synchronizations triggered by this operation become DMA
      // transfers of one entry batch each (paper Figure 8); they are daemon
      // metadata, charged at the key's heap line for dispatching purposes.
      for (uint64_t n = slab_sync_stats_->sync_dma_reads - sync_reads_before; n > 0;
           n--) {
        inflight.trace.push_back(
            {AccessKind::kRead, slot_bucket_address_[slot], config_.slab_sync_bytes});
      }
      for (uint64_t n = slab_sync_stats_->sync_dma_writes - sync_writes_before; n > 0;
           n--) {
        inflight.trace.push_back(
            {AccessKind::kWrite, slot_bucket_address_[slot], config_.slab_sync_bytes});
      }
    }

    if (tracer_ != nullptr && tracer_->enabled()) {
      const char* name = action == ReservationStation::Action::kIssueToPipeline
                             ? "admit"
                             : action == ReservationStation::Action::kFastPath
                                   ? "fast_path"
                                   : "park";
      tracer_->Instant("station", name, {{"slot", slot}, {"op", id}});
    }

    switch (action) {
      case ReservationStation::Action::kIssueToPipeline: {
        stats_.pipeline_ops++;
        const uint64_t op_id = id;
        auto [it, inserted] = inflight_.emplace(op_id, std::move(inflight));
        KVD_CHECK(inserted);
        sim_.ScheduleAt(NextCycleTime(), [this, op_id] { StepPipelineOp(op_id); });
        break;
      }
      case ReservationStation::Action::kFastPath: {
        stats_.fast_path_ops++;
        const uint64_t op_id = id;
        auto [it, inserted] = inflight_.emplace(op_id, std::move(inflight));
        KVD_CHECK(inserted);
        // Retires in one clock cycle from the cached value; the slot may now
        // need a (new) write-back.
        const uint16_t fast_slot = it->second.slot;
        sim_.ScheduleAt(NextCycleTime(), [this, op_id, fast_slot] {
          Retire(op_id);
          AdvanceSlot(fast_slot, slot_bucket_address_[fast_slot]);
        });
        break;
      }
      case ReservationStation::Action::kPark: {
        // Waits in the station chain; timing resumes at CompletePipeline or
        // TryIssueNext.
        inflight.parked_at = sim_.Now();
        auto [it, inserted] = inflight_.emplace(id, std::move(inflight));
        KVD_CHECK(inserted);
        break;
      }
      case ReservationStation::Action::kRejectFull:
        KVD_CHECK(false);  // handled above
    }
  }
}

void KvProcessor::StepPipelineOp(uint64_t id) {
  auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  Inflight& inflight = it->second;
  if (inflight.next_access >= inflight.trace.size()) {
    OnPipelineComplete(id);
    return;
  }
  // Accesses within one operation are dependent (bucket read before slab
  // read before write-back), so they run serially.
  const AccessRecord access = inflight.trace[inflight.next_access++];
  dispatcher_.Access(access.kind, access.address, access.length,
                     [this, id] { StepPipelineOp(id); }, inflight.op.trace);
}

void KvProcessor::RecordUnpark(uint64_t id) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) {
    return;
  }
  Inflight& inflight = it->second;
  if (inflight.parked_at != 0 && inflight.op.trace != 0 &&
      request_tracer_ != nullptr) {
    request_tracer_->Span(inflight.op.trace, SpanKind::kStationWait,
                          inflight.parked_at, sim_.Now(), inflight.slot);
  }
  inflight.parked_at = 0;
}

void KvProcessor::OnPipelineComplete(uint64_t id) {
  const auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  const uint16_t slot = it->second.slot;
  const uint64_t bucket_address = slot_bucket_address_[slot];
  Retire(id);

  // Data forwarding: parked same-key operations retire back to back, one per
  // clock cycle, without touching the memory system. They share the global
  // one-op-per-cycle issue budget with newly admitted operations, so total
  // retirement can never exceed the 180 MHz clock bound.
  const std::vector<uint64_t> fast_path = station_.CompletePipeline(slot);
  SimTime retire_at = sim_.Now();
  for (const uint64_t fast_id : fast_path) {
    retire_at = NextCycleTime();
    stats_.fast_path_ops++;
    RecordUnpark(fast_id);
    sim_.ScheduleAt(retire_at, [this, fast_id] { Retire(fast_id); });
  }
  if (fast_path.empty()) {
    AdvanceSlot(slot, bucket_address);
  } else {
    sim_.ScheduleAt(retire_at,
                    [this, slot, bucket_address] { AdvanceSlot(slot, bucket_address); });
  }
  Pump();
}

void KvProcessor::AdvanceSlot(uint16_t slot, uint64_t bucket_address) {
  if (station_.NeedsWriteback(slot)) {
    station_.BeginWriteback(slot);
    stats_.writebacks++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("station", "writeback", {{"slot", slot}});
    }
    // Cache write-back: one bucket-line write issued to the memory system.
    dispatcher_.Access(AccessKind::kWrite, bucket_address, kBucketBytes,
                       [this, slot, bucket_address] {
                         station_.CompleteWriteback(slot);
                         AdvanceSlot(slot, bucket_address);
                       });
    return;
  }
  // A parked operation with a different key (false-positive dependency) now
  // owns the slot and issues to the main pipeline.
  if (const auto next = station_.TryIssueNext(slot); next.has_value()) {
    stats_.pipeline_ops++;
    const uint64_t op_id = *next;
    RecordUnpark(op_id);
    sim_.ScheduleAt(NextCycleTime(), [this, op_id] { StepPipelineOp(op_id); });
  }
}

void KvProcessor::Retire(uint64_t id) {
  auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  Inflight inflight = std::move(it->second);
  inflight_.erase(it);
  stats_.retired++;
  stats_.latency_ns.Add((sim_.Now() - inflight.submitted_at) / kNanosecond);
  if (inflight.op.trace != 0 && request_tracer_ != nullptr) {
    request_tracer_->Point(inflight.op.trace, TracePoint::kRetire);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete("proc", "op", inflight.submitted_at, sim_.Now(),
                      {{"op", id}, {"slot", inflight.slot}});
  }
  // Retirement-side deadline check: a read that expired in the pipeline is
  // relabeled kDeadlineExceeded (and its payload dropped) — nobody is
  // waiting for the bytes. Writes keep their true outcome: the mutation
  // already executed, and reporting otherwise would break exactly-once
  // accounting downstream.
  if (inflight.op.deadline != 0 && sim_.Now() >= inflight.op.deadline &&
      !IsWriteOpcode(inflight.op.opcode) &&
      inflight.result.code == ResultCode::kOk) {
    stats_.deadline_retire_shed++;
    inflight.result.code = ResultCode::kDeadlineExceeded;
    inflight.result.value.clear();
    inflight.result.scalar = 0;
  }
  if (inflight.done) {
    inflight.done(std::move(inflight.result));
  }
}

void KvProcessor::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_proc_submitted_total", "Operations submitted",
                           {}, &stats_.submitted);
  registry.RegisterCounter("kvd_proc_retired_total", "Operations retired", {},
                           &stats_.retired);
  registry.RegisterCounter("kvd_proc_pipeline_ops_total",
                           "Operations routed through the memory system", {},
                           &stats_.pipeline_ops);
  registry.RegisterCounter("kvd_proc_fast_path_total",
                           "Operations retired via data forwarding", {},
                           &stats_.fast_path_ops);
  registry.RegisterCounter("kvd_proc_writebacks_total",
                           "Reservation-station cache write-backs", {},
                           &stats_.writebacks);
  registry.RegisterCounter("kvd_proc_busy_rejected_total",
                           "Submissions bounced with kBusy at the admission queue",
                           {}, &stats_.busy_rejected);
  const AdmissionStats& admission = admission_.stats();
  registry.RegisterCounter("kvd_proc_overload_rejected_total",
                           "Submissions fast-rejected with kOverloaded", {},
                           &admission.overload_rejected);
  registry.RegisterCounter("kvd_proc_codel_shed_total",
                           "Queued operations shed by CoDel sojourn control",
                           {}, &admission.codel_shed);
  registry.RegisterCounter("kvd_proc_deadline_shed_arrival_total",
                           "Operations dead on arrival (deadline passed)", {},
                           &admission.deadline_shed_arrival);
  registry.RegisterCounter("kvd_proc_deadline_shed_queue_total",
                           "Operations whose deadline expired while queued", {},
                           &admission.deadline_shed_queue);
  registry.RegisterCounter("kvd_proc_deadline_shed_retire_total",
                           "Reads relabeled kDeadlineExceeded at retirement",
                           {}, &stats_.deadline_retire_shed);
  registry.RegisterGauge("kvd_proc_backlog", "Operations waiting for admission",
                         {}, [this] { return static_cast<double>(backlog()); });
  registry.RegisterGauge("kvd_proc_inflight",
                         "Operations admitted and not yet retired", {},
                         [this] { return static_cast<double>(inflight_.size()); });
  registry.RegisterHistogram("kvd_proc_latency_ns",
                             "Submission-to-retirement latency (ns)", {},
                             [this] { return stats_.latency_ns; });
  station_.RegisterMetrics(registry);
}

}  // namespace kvd
