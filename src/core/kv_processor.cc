#include "src/core/kv_processor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/assert.h"
#include "src/common/hashing.h"

namespace kvd {
namespace {

ResultCode ToResultCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ResultCode::kOk;
    case StatusCode::kNotFound:
      return ResultCode::kNotFound;
    case StatusCode::kOutOfMemory:
      return ResultCode::kOutOfMemory;
    case StatusCode::kResourceBusy:
      return ResultCode::kBusy;
    default:
      return ResultCode::kInvalidArgument;
  }
}

}  // namespace

KvProcessor::KvProcessor(Simulator& sim, HashIndex& index,
                         TraceRecordingEngine& engine, LoadDispatcher& dispatcher,
                         UpdateFunctionRegistry& registry,
                         const KvProcessorConfig& config)
    : sim_(sim),
      index_(index),
      engine_(engine),
      dispatcher_(dispatcher),
      registry_(registry),
      config_(config),
      station_(config.ooo),
      cycle_(static_cast<SimTime>(std::llround(1e12 / config.clock_hz))) {
  KVD_CHECK(config.clock_hz > 0);
}

KvResultMessage KvProcessor::ExecuteFunctional(const KvOperation& op) {
  KvResultMessage result;
  switch (op.opcode) {
    case Opcode::kGet: {
      result.code = ToResultCode(index_.Get(op.key, result.value));
      break;
    }
    case Opcode::kPut: {
      result.code = ToResultCode(index_.Put(op.key, op.value));
      break;
    }
    case Opcode::kDelete: {
      result.code = ToResultCode(index_.Delete(op.key));
      break;
    }
    case Opcode::kUpdateScalar: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            Result<uint64_t> r =
                registry_.ApplyScalar(op.function_id, value, op.param,
                                      op.element_width);
            if (!r.ok()) {
              inner = r.status();
            } else {
              result.scalar = *r;
            }
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      break;
    }
    case Opcode::kUpdateScalarVector: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            inner = registry_.ApplyScalarToVector(op.function_id, value, op.param,
                                                  op.element_width);
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      if (result.code == ResultCode::kOk) {
        result.value = std::move(original);  // original vector returned
      }
      break;
    }
    case Opcode::kUpdateVector: {
      Status inner = Status::Ok();
      std::vector<uint8_t> original;
      const Status status = index_.UpdateInPlace(
          op.key,
          [&](std::vector<uint8_t>& value) {
            inner = registry_.ApplyVectorToVector(op.function_id, value, op.value,
                                                  op.element_width);
          },
          &original);
      result.code = ToResultCode(status.ok() ? inner : status);
      if (result.code == ResultCode::kOk) {
        result.value = std::move(original);
      }
      break;
    }
    case Opcode::kReduce: {
      std::vector<uint8_t> value;
      const Status status = index_.Get(op.key, value);
      if (!status.ok()) {
        result.code = ToResultCode(status);
        break;
      }
      Result<uint64_t> r =
          registry_.Reduce(op.function_id, value, op.param, op.element_width);
      result.code = ToResultCode(r.status());
      if (r.ok()) {
        result.scalar = *r;
      }
      break;
    }
    case Opcode::kFilter: {
      std::vector<uint8_t> value;
      const Status status = index_.Get(op.key, value);
      if (!status.ok()) {
        result.code = ToResultCode(status);
        break;
      }
      Result<std::vector<uint8_t>> r =
          registry_.Filter(op.function_id, value, op.param, op.element_width);
      result.code = ToResultCode(r.status());
      if (r.ok()) {
        result.value = std::move(*r);
      }
      break;
    }
  }
  return result;
}

SimTime KvProcessor::NextCycleTime() {
  // The decoder is fully pipelined: one operation enters per clock cycle.
  next_issue_at_ = std::max(next_issue_at_, sim_.Now()) + cycle_;
  return next_issue_at_;
}

void KvProcessor::Submit(KvOperation op, Completion done) {
  if (op.trace != 0 && request_tracer_ != nullptr) {
    // First-write-wins: a busy-bounced retry keeps the original submit time,
    // so the queue stage honestly includes the backoff.
    request_tracer_->Point(op.trace, TracePoint::kSubmit);
  }
  if (config_.max_backlog > 0 && waiting_.size() >= config_.max_backlog) {
    // Decode-stage backpressure: the operation is bounced with kBusy after
    // one decode cycle instead of queueing without bound; clients back off
    // and retry (graceful degradation, not silent unbounded latency).
    stats_.busy_rejected++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("proc", "busy_reject", {{"backlog", waiting_.size()}});
    }
    if (flight_ != nullptr && config_.busy_burst_threshold > 0) {
      if (sim_.Now() >= busy_window_start_ + config_.busy_burst_window) {
        busy_window_start_ = sim_.Now();
        busy_window_count_ = 0;
      }
      if (++busy_window_count_ == config_.busy_burst_threshold) {
        flight_->Trigger(FlightTrigger::kBusyBurst,
                         "kBusy rejection burst at the admission queue");
      }
    }
    sim_.ScheduleAt(NextCycleTime(), [done = std::move(done)]() mutable {
      KvResultMessage result;
      result.code = ResultCode::kBusy;
      done(std::move(result));
    });
    return;
  }
  stats_.submitted++;
  waiting_.emplace_back(std::move(op), std::move(done));
  Pump();
}

void KvProcessor::Pump() {
  while (!waiting_.empty()) {
    KvOperation& op = waiting_.front().first;
    const KeyHash kh = HashKey(op.key);
    const uint16_t slot = kh.StationSlot();
    const uint64_t id = next_id_;
    const ReservationStation::Action action =
        station_.Admit(id, slot, kh.digest, IsWriteOpcode(op.opcode));
    if (action == ReservationStation::Action::kRejectFull) {
      return;  // retried when an operation retires
    }
    next_id_++;

    Inflight inflight;
    inflight.op = std::move(op);
    inflight.done = std::move(waiting_.front().second);
    waiting_.pop_front();
    inflight.slot = slot;
    inflight.digest = kh.digest;
    inflight.submitted_at = sim_.Now();
    if (inflight.op.trace != 0 && request_tracer_ != nullptr) {
      request_tracer_->Point(inflight.op.trace, TracePoint::kAdmit);
    }

    // Functional execution at admission: the station guarantees per-key
    // admission order is execution order, so results are exact.
    engine_.BeginOp();
    const uint64_t sync_reads_before =
        slab_sync_stats_ != nullptr ? slab_sync_stats_->sync_dma_reads : 0;
    const uint64_t sync_writes_before =
        slab_sync_stats_ != nullptr ? slab_sync_stats_->sync_dma_writes : 0;
    inflight.result = ExecuteFunctional(inflight.op);
    if (!inflight.op.return_value) {
      inflight.result.value.clear();  // caller declined the original vector
    }
    inflight.trace = engine_.TakeTrace();
    slot_bucket_address_[slot] = index_.BucketAddressFor(inflight.op.key);
    if (slab_sync_stats_ != nullptr) {
      // Slab-pool synchronizations triggered by this operation become DMA
      // transfers of one entry batch each (paper Figure 8); they are daemon
      // metadata, charged at the key's heap line for dispatching purposes.
      for (uint64_t n = slab_sync_stats_->sync_dma_reads - sync_reads_before; n > 0;
           n--) {
        inflight.trace.push_back(
            {AccessKind::kRead, slot_bucket_address_[slot], config_.slab_sync_bytes});
      }
      for (uint64_t n = slab_sync_stats_->sync_dma_writes - sync_writes_before; n > 0;
           n--) {
        inflight.trace.push_back(
            {AccessKind::kWrite, slot_bucket_address_[slot], config_.slab_sync_bytes});
      }
    }

    if (tracer_ != nullptr && tracer_->enabled()) {
      const char* name = action == ReservationStation::Action::kIssueToPipeline
                             ? "admit"
                             : action == ReservationStation::Action::kFastPath
                                   ? "fast_path"
                                   : "park";
      tracer_->Instant("station", name, {{"slot", slot}, {"op", id}});
    }

    switch (action) {
      case ReservationStation::Action::kIssueToPipeline: {
        stats_.pipeline_ops++;
        const uint64_t op_id = id;
        auto [it, inserted] = inflight_.emplace(op_id, std::move(inflight));
        KVD_CHECK(inserted);
        sim_.ScheduleAt(NextCycleTime(), [this, op_id] { StepPipelineOp(op_id); });
        break;
      }
      case ReservationStation::Action::kFastPath: {
        stats_.fast_path_ops++;
        const uint64_t op_id = id;
        auto [it, inserted] = inflight_.emplace(op_id, std::move(inflight));
        KVD_CHECK(inserted);
        // Retires in one clock cycle from the cached value; the slot may now
        // need a (new) write-back.
        const uint16_t fast_slot = it->second.slot;
        sim_.ScheduleAt(NextCycleTime(), [this, op_id, fast_slot] {
          Retire(op_id);
          AdvanceSlot(fast_slot, slot_bucket_address_[fast_slot]);
        });
        break;
      }
      case ReservationStation::Action::kPark: {
        // Waits in the station chain; timing resumes at CompletePipeline or
        // TryIssueNext.
        inflight.parked_at = sim_.Now();
        auto [it, inserted] = inflight_.emplace(id, std::move(inflight));
        KVD_CHECK(inserted);
        break;
      }
      case ReservationStation::Action::kRejectFull:
        KVD_CHECK(false);  // handled above
    }
  }
}

void KvProcessor::StepPipelineOp(uint64_t id) {
  auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  Inflight& inflight = it->second;
  if (inflight.next_access >= inflight.trace.size()) {
    OnPipelineComplete(id);
    return;
  }
  // Accesses within one operation are dependent (bucket read before slab
  // read before write-back), so they run serially.
  const AccessRecord access = inflight.trace[inflight.next_access++];
  dispatcher_.Access(access.kind, access.address, access.length,
                     [this, id] { StepPipelineOp(id); }, inflight.op.trace);
}

void KvProcessor::RecordUnpark(uint64_t id) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) {
    return;
  }
  Inflight& inflight = it->second;
  if (inflight.parked_at != 0 && inflight.op.trace != 0 &&
      request_tracer_ != nullptr) {
    request_tracer_->Span(inflight.op.trace, SpanKind::kStationWait,
                          inflight.parked_at, sim_.Now(), inflight.slot);
  }
  inflight.parked_at = 0;
}

void KvProcessor::OnPipelineComplete(uint64_t id) {
  const auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  const uint16_t slot = it->second.slot;
  const uint64_t bucket_address = slot_bucket_address_[slot];
  Retire(id);

  // Data forwarding: parked same-key operations retire back to back, one per
  // clock cycle, without touching the memory system. They share the global
  // one-op-per-cycle issue budget with newly admitted operations, so total
  // retirement can never exceed the 180 MHz clock bound.
  const std::vector<uint64_t> fast_path = station_.CompletePipeline(slot);
  SimTime retire_at = sim_.Now();
  for (const uint64_t fast_id : fast_path) {
    retire_at = NextCycleTime();
    stats_.fast_path_ops++;
    RecordUnpark(fast_id);
    sim_.ScheduleAt(retire_at, [this, fast_id] { Retire(fast_id); });
  }
  if (fast_path.empty()) {
    AdvanceSlot(slot, bucket_address);
  } else {
    sim_.ScheduleAt(retire_at,
                    [this, slot, bucket_address] { AdvanceSlot(slot, bucket_address); });
  }
  Pump();
}

void KvProcessor::AdvanceSlot(uint16_t slot, uint64_t bucket_address) {
  if (station_.NeedsWriteback(slot)) {
    station_.BeginWriteback(slot);
    stats_.writebacks++;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("station", "writeback", {{"slot", slot}});
    }
    // Cache write-back: one bucket-line write issued to the memory system.
    dispatcher_.Access(AccessKind::kWrite, bucket_address, kBucketBytes,
                       [this, slot, bucket_address] {
                         station_.CompleteWriteback(slot);
                         AdvanceSlot(slot, bucket_address);
                       });
    return;
  }
  // A parked operation with a different key (false-positive dependency) now
  // owns the slot and issues to the main pipeline.
  if (const auto next = station_.TryIssueNext(slot); next.has_value()) {
    stats_.pipeline_ops++;
    const uint64_t op_id = *next;
    RecordUnpark(op_id);
    sim_.ScheduleAt(NextCycleTime(), [this, op_id] { StepPipelineOp(op_id); });
  }
}

void KvProcessor::Retire(uint64_t id) {
  auto it = inflight_.find(id);
  KVD_CHECK(it != inflight_.end());
  Inflight inflight = std::move(it->second);
  inflight_.erase(it);
  stats_.retired++;
  stats_.latency_ns.Add((sim_.Now() - inflight.submitted_at) / kNanosecond);
  if (inflight.op.trace != 0 && request_tracer_ != nullptr) {
    request_tracer_->Point(inflight.op.trace, TracePoint::kRetire);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete("proc", "op", inflight.submitted_at, sim_.Now(),
                      {{"op", id}, {"slot", inflight.slot}});
  }
  if (inflight.done) {
    inflight.done(std::move(inflight.result));
  }
}

void KvProcessor::RegisterMetrics(MetricRegistry& registry) const {
  registry.RegisterCounter("kvd_proc_submitted_total", "Operations submitted",
                           {}, &stats_.submitted);
  registry.RegisterCounter("kvd_proc_retired_total", "Operations retired", {},
                           &stats_.retired);
  registry.RegisterCounter("kvd_proc_pipeline_ops_total",
                           "Operations routed through the memory system", {},
                           &stats_.pipeline_ops);
  registry.RegisterCounter("kvd_proc_fast_path_total",
                           "Operations retired via data forwarding", {},
                           &stats_.fast_path_ops);
  registry.RegisterCounter("kvd_proc_writebacks_total",
                           "Reservation-station cache write-backs", {},
                           &stats_.writebacks);
  registry.RegisterCounter("kvd_proc_busy_rejected_total",
                           "Submissions bounced with kBusy at the admission queue",
                           {}, &stats_.busy_rejected);
  registry.RegisterGauge("kvd_proc_backlog", "Operations waiting for admission",
                         {}, [this] { return static_cast<double>(waiting_.size()); });
  registry.RegisterGauge("kvd_proc_inflight",
                         "Operations admitted and not yet retired", {},
                         [this] { return static_cast<double>(inflight_.size()); });
  registry.RegisterHistogram("kvd_proc_latency_ns",
                             "Submission-to-retirement latency (ns)", {},
                             [this] { return stats_.latency_ns; });
  station_.RegisterMetrics(registry);
}

}  // namespace kvd
