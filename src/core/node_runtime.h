// NodeRuntime: the assembled per-node subsystem stack.
//
// One runtime is the full system of paper Figure 2/4 — host memory holding
// the hash index and slab heap, the PCIe DMA engine, the NIC DRAM load
// dispatcher, the reservation station, the KV processor, and the 40 GbE
// network model — wired to one discrete-event simulator plus the node's
// observability (metrics, event tracer, request tracer, SLO monitor, flight
// recorder).
//
// The runtime is the composable unit of the layered architecture: a
// standalone KvDirectServer embeds exactly one; MultiNicServer shards and
// ReplicationGroup replicas each embed one per node on a shared simulator.
// The runtime contains no protocol state — framing, replay dedup, and retry
// live in src/transport and are attached by the embedding server.
#ifndef SRC_CORE_NODE_RUNTIME_H_
#define SRC_CORE_NODE_RUNTIME_H_

#include <cstdint>
#include <memory>

#include "src/alloc/slab_allocator.h"
#include "src/common/units.h"
#include "src/core/kv_processor.h"
#include "src/core/update_functions.h"
#include "src/dram/load_dispatcher.h"
#include "src/dram/nic_dram.h"
#include "src/fault/fault_injector.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/mem/host_memory.h"
#include "src/net/network_model.h"
#include "src/obs/event_tracer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace kvd {

struct ServerConfig {
  // KVS region in host memory (the paper reserves 64 GiB; scaled here).
  uint64_t kvs_memory_bytes = 64 * kMiB;
  double hash_index_ratio = 0.5;
  uint32_t inline_threshold_bytes = 10;
  uint32_t min_slab_bytes = 32;
  uint32_t max_slab_bytes = 512;

  DmaEngineConfig pcie;
  NicDramConfig nic_dram;
  DispatchPolicy dispatch_policy = DispatchPolicy::kHybrid;
  // < 0 selects the analytically optimal ratio for the workload skew.
  double dispatch_ratio = -1.0;
  bool long_tail_workload = false;

  NetworkConfig network;
  KvProcessorConfig processor;

  // Record simulator events (DMA, dispatch, station, network) for Chrome
  // trace export. Off by default; costs one branch per hook when disabled.
  bool enable_tracing = false;

  // Per-request tracing (src/obs/request_trace.h): trace contexts created at
  // client send, propagated through every layer, aggregated into the latency
  // breakdown, the SLO monitor, and the flight recorder. Off by default; when
  // disabled every hook is one branch on a zero handle.
  bool enable_request_tracing = false;
  SloConfig slo;
  FlightRecorderConfig flight;

  // Deterministic fault injection across the network, PCIe, and NIC DRAM
  // models (src/fault). All-zero probabilities (the default) inject nothing.
  FaultPlan faults;
  // Server-side idempotent-replay cache for the framed request path: the
  // most recent N responses are kept so a retransmitted request is answered
  // from the cache instead of re-executing its (non-idempotent) operations.
  uint32_t replay_cache_entries = 4096;
  // Completed replay entries younger than this are never evicted, even when
  // the cache is over budget: a retransmission of a just-answered frame may
  // still be in flight, and evicting its entry would re-execute the ops.
  // The cache may temporarily exceed `replay_cache_entries` to honor this.
  SimTime replay_retain_time = 100 * kMillisecond;

  // Tunes hash_index_ratio / inline_threshold / dispatch_ratio for a workload
  // of `kv_bytes` key+value pairs, as §5.2.1 does before each benchmark.
  void AutoTune(uint32_t kv_bytes, bool long_tail);
};

class NodeRuntime {
 public:
  // By default the runtime owns its simulator. Passing `external_sim` puts
  // several nodes on one clock — required when they exchange messages
  // (MultiNicServer shards, src/replica replication groups).
  explicit NodeRuntime(const ServerConfig& config,
                       Simulator* external_sim = nullptr);

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  Simulator& simulator() { return sim_; }
  KvProcessor& processor() { return *processor_; }
  HashIndex& index() { return *index_; }
  SlabAllocator& allocator() { return *allocator_; }
  LoadDispatcher& dispatcher() { return *dispatcher_; }
  DmaEngine& dma() { return *dma_; }
  NicDram& nic_dram() { return *nic_dram_; }
  NetworkModel& network() { return *network_; }
  UpdateFunctionRegistry& registry() { return registry_; }
  FaultInjector& faults() { return *fault_; }
  const ServerConfig& config() const { return config_; }
  const AccessStats& memory_stats() const { return direct_engine_->stats(); }
  const MetricRegistry& metrics() const { return metrics_; }
  // Mutable registry for the embedding server's own counters (the transport
  // endpoint's replay stats, for example).
  MetricRegistry& metrics_mutable() { return metrics_; }
  EventTracer& tracer() { return tracer_; }

  // Request-tracing consumers. `request_tracer()` returns the *active* tracer
  // — the owned one, or the external one after UseRequestTracer (replication
  // groups share one tracer per group).
  RequestTracer& request_tracer() { return *active_request_tracer_; }
  FlightRecorder& flight_recorder() { return *active_flight_; }
  LatencyBreakdown& breakdown() { return breakdown_; }
  SloMonitor& slo_monitor() { return slo_monitor_; }
  // Re-points every component at an external tracer/recorder. The owned
  // instances stay alive, so registered metric readers never dangle.
  void UseRequestTracer(RequestTracer* tracer);
  void UseFlightRecorder(FlightRecorder* recorder);

 private:
  ServerConfig config_;
  // Null when running on an external (shared) simulator; sim_ aliases either
  // the owned instance or the external one. Declared before every member
  // that captures Simulator& at construction.
  std::unique_ptr<Simulator> owned_sim_;
  Simulator& sim_;
  MetricRegistry metrics_;
  EventTracer tracer_{sim_};
  RequestTracer request_tracer_{sim_};
  LatencyBreakdown breakdown_;
  SloMonitor slo_monitor_{sim_};
  FlightRecorder flight_recorder_{sim_};
  RequestTracer* active_request_tracer_ = &request_tracer_;
  FlightRecorder* active_flight_ = &flight_recorder_;
  UpdateFunctionRegistry registry_;
  std::unique_ptr<HostMemory> memory_;
  std::unique_ptr<DirectEngine> direct_engine_;
  std::unique_ptr<TraceRecordingEngine> trace_engine_;
  std::unique_ptr<SlabAllocator> allocator_;
  std::unique_ptr<HashIndex> index_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<DmaEngine> dma_;
  std::unique_ptr<NicDram> nic_dram_;
  std::unique_ptr<LoadDispatcher> dispatcher_;
  std::unique_ptr<NetworkModel> network_;
  std::unique_ptr<KvProcessor> processor_;
};

}  // namespace kvd

#endif  // SRC_CORE_NODE_RUNTIME_H_
