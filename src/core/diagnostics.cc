#include "src/core/diagnostics.h"

#include <cstdarg>
#include <cstdio>

namespace kvd {
namespace {

void Append(std::string& out, const char* format, ...) {
  char line[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(line, sizeof(line), format, args);
  va_end(args);
  out += line;
  out += '\n';
}

}  // namespace

std::string DiagnosticsReport(KvDirectServer& server) {
  std::string out;
  Append(out, "=== KV-Direct server diagnostics ===");
  Append(out, "simulated time: %.3f ms",
         static_cast<double>(server.simulator().Now()) / kMillisecond);

  const HashIndex& index = server.index();
  Append(out, "[store]   kvs=%llu  payload=%llu B  utilization=%.1f%%  buckets=%llu",
         static_cast<unsigned long long>(index.num_kvs()),
         static_cast<unsigned long long>(index.payload_bytes()),
         index.Utilization() * 100,
         static_cast<unsigned long long>(index.num_buckets()));
  Append(out, "[store]   chained_buckets=%llu  chain_follows=%llu  false_hits=%llu",
         static_cast<unsigned long long>(index.stats().chained_buckets_live),
         static_cast<unsigned long long>(index.stats().chain_follows),
         static_cast<unsigned long long>(index.stats().secondary_false_hits));

  const KvProcessorStats& proc = server.processor().stats();
  const double fast_share =
      proc.retired > 0 ? 100.0 * static_cast<double>(proc.fast_path_ops) /
                             static_cast<double>(proc.retired)
                       : 0.0;
  Append(out, "[proc]    submitted=%llu retired=%llu pipeline=%llu fast_path=%.1f%%",
         static_cast<unsigned long long>(proc.submitted),
         static_cast<unsigned long long>(proc.retired),
         static_cast<unsigned long long>(proc.pipeline_ops), fast_share);
  Append(out, "[proc]    latency_ns: %s", proc.latency_ns.Summary().c_str());

  const OooStats& station = server.processor().station().stats();
  Append(out, "[station] parked=%llu writebacks=%llu rejected=%llu peak_inflight=%u",
         static_cast<unsigned long long>(station.parked),
         static_cast<unsigned long long>(station.writebacks),
         static_cast<unsigned long long>(station.rejected_full),
         station.peak_inflight);

  const SyncStats& slab = server.allocator().sync_stats();
  Append(out, "[slab]    allocs=%llu frees=%llu sync_dma=%llu (%.4f/op) free=%llu B",
         static_cast<unsigned long long>(slab.allocations),
         static_cast<unsigned long long>(slab.frees),
         static_cast<unsigned long long>(slab.sync_dma_reads + slab.sync_dma_writes),
         slab.AmortizedDmaPerOp(),
         static_cast<unsigned long long>(server.allocator().FreeBytes()));

  const DispatchStats& dispatch = server.dispatcher().stats();
  Append(out, "[dram]    pcie=%llu hits=%llu misses=%llu writebacks=%llu hit_rate=%.1f%%",
         static_cast<unsigned long long>(dispatch.pcie_accesses),
         static_cast<unsigned long long>(dispatch.dram_hits),
         static_cast<unsigned long long>(dispatch.dram_misses),
         static_cast<unsigned long long>(dispatch.writebacks),
         dispatch.HitRate() * 100);

  for (uint32_t i = 0; i < server.dma().num_links(); i++) {
    const PcieLink& link = server.dma().link(i);
    Append(out, "[pcie%u]   read_tlps=%llu write_tlps=%llu up=%llu B down=%llu B", i,
           static_cast<unsigned long long>(link.read_tlps()),
           static_cast<unsigned long long>(link.write_tlps()),
           static_cast<unsigned long long>(link.upstream_bytes()),
           static_cast<unsigned long long>(link.downstream_bytes()));
  }
  Append(out, "[pcie]    read_tags peak=%u/%u", server.dma().tag_pool().peak_in_use(),
         server.dma().tag_pool().capacity());

  const NetworkModel& network = server.network();
  Append(out, "[net]     to_server: %llu pkts %llu B | to_client: %llu pkts %llu B",
         static_cast<unsigned long long>(network.packets_to_server()),
         static_cast<unsigned long long>(network.bytes_to_server()),
         static_cast<unsigned long long>(network.packets_to_client()),
         static_cast<unsigned long long>(network.bytes_to_client()));
  return out;
}

}  // namespace kvd
