#include "src/core/diagnostics.h"

#include <cstdio>

namespace kvd {

std::string DiagnosticsReport(KvDirectServer& server) {
  std::string out = "=== KV-Direct server diagnostics ===\n";
  char line[64];
  std::snprintf(line, sizeof(line), "simulated time: %.3f ms\n",
                static_cast<double>(server.simulator().Now()) / kMillisecond);
  out += line;
  out += server.metrics().PlainText();
  return out;
}

}  // namespace kvd
