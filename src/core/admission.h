// Admission control and load shedding for the server's decode backlog.
//
// The processor used to run one flat rule: backlog over max_backlog → kBusy.
// That bounds memory but not latency — under sustained overload the queue
// sits pinned at the cap and every admitted op inherits the full queue's
// sojourn time, so goodput collapses to zero while the server stays "busy"
// doing work nobody will wait for. This controller layers four defenses, in
// the order an arriving op meets them:
//
//   1. kOverloaded fast-reject: past `overload_backlog` the op is refused
//      before any queueing or decode-cycle charge. Deliberately cheaper than
//      the kBusy bounce so a saturated server spends its cycles on work it
//      will finish.
//   2. Dead-on-arrival shed: an op whose deadline already passed is answered
//      kDeadlineExceeded immediately — executing it is pure waste.
//   3. kBusy backpressure: the legacy max_backlog bounce, kept as the
//      "please slow down" signal below the overload ceiling.
//   4. Dequeue-side shedding: when an op finally reaches the head of the
//      queue, expired deadlines are shed (kDeadlineExceeded) and CoDel-style
//      sojourn control sheds just enough ops (kOverloaded) to drag the
//      standing queue delay back under `codel_target`.
//
// Priority classes (control > reads > writes) keep replication/meta traffic
// and cheap reads moving when writes are what's flooding the queue. With the
// default config (everything zero / class_queues off) the controller
// reproduces the old flat max_backlog→kBusy behavior bit for bit.
#ifndef SRC_CORE_ADMISSION_H_
#define SRC_CORE_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "src/common/units.h"
#include "src/net/kv_types.h"

namespace kvd {

// Priority class of an operation; lower enum value = higher priority.
enum class OpClass : uint8_t {
  kControl = 0,  // replication apply, management — never user-shed
  kRead = 1,
  kWrite = 2,
};

inline constexpr size_t kNumOpClasses = 3;

constexpr const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kControl:
      return "control";
    case OpClass::kRead:
      return "read";
    case OpClass::kWrite:
      return "write";
  }
  return "unknown_class";
}

// Default classification for client traffic: reads vs writes by opcode.
constexpr OpClass ClassifyOpcode(Opcode opcode) {
  return IsWriteOpcode(opcode) ? OpClass::kWrite : OpClass::kRead;
}

struct AdmissionConfig {
  // kBusy bounce threshold (the legacy knob). 0 = unbounded.
  uint32_t max_backlog = 0;
  // kOverloaded fast-reject ceiling; must be >= max_backlog to mean anything.
  // 0 = disabled.
  uint32_t overload_backlog = 0;
  // CoDel: shed at dequeue when sojourn time stays above this target for a
  // full interval. 0 = disabled.
  SimTime codel_target = 0;
  SimTime codel_interval = 100 * kMicrosecond;
  // When false, every class shares one FIFO (legacy order). When true, the
  // processor drains control before reads before writes.
  bool class_queues = false;
};

struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t busy_rejected = 0;      // kBusy bounces (legacy counter feeds this)
  uint64_t overload_rejected = 0;  // kOverloaded fast-rejects, never queued
  uint64_t codel_shed = 0;         // dequeue-side sojourn sheds
  uint64_t deadline_shed_arrival = 0;  // dead on arrival
  uint64_t deadline_shed_queue = 0;    // expired while queued
  uint64_t admitted_by_class[kNumOpClasses] = {0, 0, 0};
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  enum class Decision : uint8_t {
    kAdmit,
    kBusy,              // bounce after the decode-cycle charge (legacy path)
    kOverloaded,        // fast-reject, no queueing, no decode charge
    kDeadlineExceeded,  // dead on arrival
  };

  enum class DequeueAction : uint8_t {
    kProcess,
    kShedDeadline,  // expired while queued → kDeadlineExceeded
    kShedSojourn,   // CoDel over-target → kOverloaded
  };

  // Arrival-side decision. `backlog` is the total queued-op count across
  // classes before this op.
  Decision Accept(OpClass cls, SimTime deadline, uint32_t backlog, SimTime now);

  // Head-of-queue decision for the op about to be processed.
  DequeueAction OnDequeue(SimTime deadline, SimTime enqueued_at, SimTime now);

  const AdmissionConfig& config() const { return config_; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  bool CodelShouldShed(SimTime sojourn, SimTime now);

  AdmissionConfig config_;
  AdmissionStats stats_;
  // CoDel state (Nichols & Jacobson, CACM 2012): shed once sojourn has been
  // above target for a full interval, then at drop_next spaced by
  // interval/sqrt(count) while it stays above.
  SimTime first_above_time_ = 0;
  SimTime drop_next_ = 0;
  uint32_t drop_count_ = 0;
  bool dropping_ = false;
};

}  // namespace kvd

#endif  // SRC_CORE_ADMISSION_H_
