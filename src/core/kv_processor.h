// The KV processor (paper §3.3, Figure 4): the FPGA pipeline that decodes
// operations, resolves dependencies in the reservation station, executes
// against the hash index, and dispatches memory accesses between PCIe and
// NIC DRAM.
//
// Execution is split in two layers that share one code path through the hash
// index:
//
//   1. *Functional* execution runs synchronously at admission time against
//      real bytes in host memory, recording the DMA-equivalent access trace.
//      Per-key ordering equals admission order, which the reservation station
//      also enforces for the timed layer, so results are exact.
//   2. *Timed* execution replays the trace through the load dispatcher
//      (PCIe/NIC-DRAM discrete-event models). Accesses within one operation
//      are dependent and run serially; across operations the pipeline keeps
//      up to max_inflight operations moving — exactly the paper's source of
//      parallelism.
//
// Operations whose key is cached in the reservation station skip the memory
// system entirely and retire at one per clock cycle (the data-forwarding fast
// path that gives 180 Mops single-key atomics, Figure 13a).
#ifndef SRC_CORE_KV_PROCESSOR_H_
#define SRC_CORE_KV_PROCESSOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/admission.h"
#include "src/core/update_functions.h"
#include "src/dram/load_dispatcher.h"
#include "src/hash/hash_index.h"
#include "src/mem/access_engine.h"
#include "src/net/kv_types.h"
#include "src/obs/event_tracer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metric_registry.h"
#include "src/obs/request_trace.h"
#include "src/ooo/reservation_station.h"
#include "src/sim/simulator.h"

namespace kvd {

struct KvProcessorConfig {
  double clock_hz = 180e6;  // fully pipelined: one op per cycle peak
  OooConfig ooo;
  // Synthetic trace entries for slab-pool syncs: entries_per_batch * 5 B.
  uint32_t slab_sync_bytes = 160;
  // Admission-queue depth beyond the reservation station; once full, new
  // submissions bounce with kBusy instead of queueing without bound.
  // 0 = unbounded (the seed behavior). Legacy alias for admission.max_backlog:
  // if admission.max_backlog is 0 this value is copied into it.
  uint32_t max_backlog = 0;
  // Full overload-control policy (fast-reject ceiling, CoDel sojourn
  // shedding, priority classes). Defaults reproduce the flat
  // max_backlog→kBusy behavior exactly.
  AdmissionConfig admission;
  // A flight-recorder trigger fires when this many kBusy rejections land
  // within one busy_burst_window of simulated time. 0 disables detection.
  uint32_t busy_burst_threshold = 64;
  SimTime busy_burst_window = kMillisecond;
};

struct KvProcessorStats {
  uint64_t submitted = 0;
  uint64_t retired = 0;
  uint64_t pipeline_ops = 0;   // ops that went through the memory system
  uint64_t fast_path_ops = 0;  // retired from the reservation station
  uint64_t writebacks = 0;
  uint64_t busy_rejected = 0;  // bounced with kBusy at the admission queue
  // Reads whose deadline expired between admission and retirement: the
  // result is relabeled kDeadlineExceeded (writes keep their true outcome —
  // the mutation already happened).
  uint64_t deadline_retire_shed = 0;
  LatencyHistogram latency_ns;  // submission -> retirement
};

class KvProcessor {
 public:
  using Completion = std::function<void(KvResultMessage)>;

  KvProcessor(Simulator& sim, HashIndex& index, TraceRecordingEngine& engine,
              LoadDispatcher& dispatcher, UpdateFunctionRegistry& registry,
              const KvProcessorConfig& config);

  // Executes `op` with full timing; `done` fires at retirement (sim time).
  // Classifies the op read/write by opcode for admission purposes.
  void Submit(KvOperation op, Completion done);
  // Same, with an explicit priority class (replication applies submit as
  // kControl so they are never load-shed).
  void Submit(KvOperation op, Completion done, OpClass cls);

  // Pure functional execution, no simulation (tests, warm-up fills).
  KvResultMessage ExecuteFunctional(const KvOperation& op);

  // Attaches the slab allocator's sync counters so pool synchronization DMAs
  // are charged to the operations that trigger them.
  void AttachSlabSyncStats(const SyncStats* stats) { slab_sync_stats_ = stats; }

  // Registers processor and reservation-station counters (readers over the
  // live stats structs; no behavior change).
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }
  void SetRequestTracer(RequestTracer* tracer) { request_tracer_ = tracer; }
  // kBusy rejection bursts fire the flight recorder.
  void SetFlightRecorder(FlightRecorder* recorder) { flight_ = recorder; }

  const KvProcessorStats& stats() const { return stats_; }
  const AdmissionStats& admission_stats() const { return admission_.stats(); }
  const ReservationStation& station() const { return station_; }
  SimTime cycle() const { return cycle_; }
  size_t backlog() const {
    size_t n = 0;
    for (const auto& q : waiting_) {
      n += q.size();
    }
    return n;
  }

 private:
  struct Inflight {
    KvOperation op;
    KvResultMessage result;
    std::vector<AccessRecord> trace;
    size_t next_access = 0;
    uint16_t slot = 0;
    uint64_t digest = 0;
    SimTime submitted_at = 0;
    SimTime parked_at = 0;  // nonzero while waiting in a station chain
    Completion done;
  };

  struct Waiting {
    KvOperation op;
    Completion done;
    OpClass cls = OpClass::kRead;
    SimTime enqueued_at = 0;
  };

  // Admits from the waiting queues into the reservation station while
  // capacity allows, shedding expired/over-target heads along the way.
  void Pump();
  // Highest-priority non-empty waiting queue, or nullptr when all drained.
  std::deque<Waiting>* NextQueue();
  // Feeds the flight recorder's rejection-burst trigger.
  void NoteBusyBurst();
  // Runs the next access of a pipeline op, or completes it.
  void StepPipelineOp(uint64_t id);
  void OnPipelineComplete(uint64_t id);
  // Post-completion slot maintenance: write-backs and chained issues.
  void AdvanceSlot(uint16_t slot, uint64_t bucket_address);
  void Retire(uint64_t id);
  SimTime NextCycleTime();
  // Closes the kStationWait span of a parked op that just resumed.
  void RecordUnpark(uint64_t id);

  Simulator& sim_;
  HashIndex& index_;
  TraceRecordingEngine& engine_;
  LoadDispatcher& dispatcher_;
  UpdateFunctionRegistry& registry_;
  KvProcessorConfig config_;
  const SyncStats* slab_sync_stats_ = nullptr;
  EventTracer* tracer_ = nullptr;
  RequestTracer* request_tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  ReservationStation station_;
  SimTime cycle_;
  SimTime next_issue_at_ = 0;
  // Busy-burst detection (tumbling window).
  SimTime busy_window_start_ = 0;
  uint64_t busy_window_count_ = 0;

  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Inflight> inflight_;
  // One FIFO per priority class, drained control → reads → writes. With
  // admission.class_queues off every op lands in queue 0 (legacy FIFO order).
  std::array<std::deque<Waiting>, kNumOpClasses> waiting_;
  AdmissionController admission_;
  // Bucket addresses for pending write-backs, keyed by station slot.
  std::unordered_map<uint16_t, uint64_t> slot_bucket_address_;

  KvProcessorStats stats_;
};

}  // namespace kvd

#endif  // SRC_CORE_KV_PROCESSOR_H_
