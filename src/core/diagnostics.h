// Human-readable diagnostics across every component of a KvDirectServer —
// the operational visibility a deployed store needs: per-subsystem counters,
// utilization, and the latency distribution, in one report.
//
// The report body is rendered from the server's MetricRegistry, so it covers
// exactly the metrics that Prometheus/JSON exposition covers, sorted by
// metric name — deterministic for a given system state and golden-testable.
#ifndef SRC_CORE_DIAGNOSTICS_H_
#define SRC_CORE_DIAGNOSTICS_H_

#include <string>

#include "src/core/kv_direct.h"

namespace kvd {

// Multi-line report: a header (simulated time) followed by one sorted
// `name{labels} value` line per registered metric — the store (KVs,
// utilization), the KV processor (ops, fast path, latency), the reservation
// station, the slab allocator (sync DMA amortization), the load dispatcher
// (hit rates), the PCIe links, and the network.
std::string DiagnosticsReport(KvDirectServer& server);

}  // namespace kvd

#endif  // SRC_CORE_DIAGNOSTICS_H_
