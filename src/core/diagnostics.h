// Human-readable diagnostics across every component of a KvDirectServer —
// the operational visibility a deployed store needs: per-subsystem counters,
// utilization, and the latency distribution, in one report.
#ifndef SRC_CORE_DIAGNOSTICS_H_
#define SRC_CORE_DIAGNOSTICS_H_

#include <string>

#include "src/core/kv_direct.h"

namespace kvd {

// Multi-line report covering the store (KVs, utilization), the KV processor
// (ops, fast-path share, latency percentiles), the reservation station, the
// slab allocator (sync DMA amortization), the load dispatcher (hit rates),
// the PCIe links, and the network.
std::string DiagnosticsReport(KvDirectServer& server);

}  // namespace kvd

#endif  // SRC_CORE_DIAGNOSTICS_H_
