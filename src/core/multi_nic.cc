#include "src/core/multi_nic.h"

#include <algorithm>

#include "src/common/assert.h"

namespace kvd {

MultiNicServer::MultiNicServer(uint32_t num_nics, const ServerConfig& per_nic_config,
                               Simulator* shared_sim)
    : router_(num_nics) {
  KVD_CHECK(num_nics >= 1);
  for (uint32_t i = 0; i < num_nics; i++) {
    nics_.push_back(std::make_unique<KvDirectServer>(per_nic_config, shared_sim));
  }
}

uint32_t MultiNicServer::OwnerOf(std::span<const uint8_t> key) const {
  return router_.PartitionOf(key);
}

Status MultiNicServer::Load(std::span<const uint8_t> key,
                            std::span<const uint8_t> value) {
  return nics_[OwnerOf(key)]->Load(key, value);
}

KvResultMessage MultiNicServer::Execute(const KvOperation& op) {
  return nics_[OwnerOf(op.key)]->Execute(op);
}

uint64_t MultiNicServer::TotalKvs() const {
  uint64_t total = 0;
  for (const auto& nic : nics_) {
    total += nic->index().num_kvs();
  }
  return total;
}

uint64_t MultiNicServer::TotalRetired() const {
  uint64_t total = 0;
  for (const auto& nic : nics_) {
    total += nic->processor().stats().retired;
  }
  return total;
}

SimTime MultiNicServer::MaxSimTime() const {
  SimTime latest = 0;
  for (const auto& nic : nics_) {
    latest = std::max(latest, nic->simulator().Now());
  }
  return latest;
}

LatencyHistogram MultiNicServer::MergedLatency() {
  LatencyHistogram merged;
  for (const auto& nic : nics_) {
    merged.Merge(nic->processor().stats().latency_ns);
  }
  return merged;
}

MultiNicClient::MultiNicClient(MultiNicServer& cluster, Client::Options options)
    : cluster_(cluster) {
  for (uint32_t i = 0; i < cluster.num_nics(); i++) {
    clients_.push_back(std::make_unique<Client>(cluster.nic(i), options));
  }
}

Client& MultiNicClient::ClientFor(std::span<const uint8_t> key) {
  return *clients_[cluster_.OwnerOf(key)];
}

Result<std::vector<uint8_t>> MultiNicClient::Get(std::span<const uint8_t> key) {
  return ClientFor(key).Get(key);
}

Status MultiNicClient::Put(std::span<const uint8_t> key,
                           std::span<const uint8_t> value) {
  return ClientFor(key).Put(key, value);
}

Status MultiNicClient::Delete(std::span<const uint8_t> key) {
  return ClientFor(key).Delete(key);
}

Result<uint64_t> MultiNicClient::Update(std::span<const uint8_t> key, uint64_t param,
                                        uint16_t function_id, uint8_t element_width) {
  return ClientFor(key).Update(key, param, function_id, element_width);
}

size_t MultiNicClient::Enqueue(KvOperation op) {
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

std::vector<KvResultMessage> MultiNicClient::Flush() {
  std::vector<KvOperation> ops = std::move(pending_);
  pending_.clear();
  // Partition by owner, remembering each op's original position.
  std::vector<std::vector<size_t>> positions(clients_.size());
  for (size_t i = 0; i < ops.size(); i++) {
    const uint32_t owner = cluster_.OwnerOf(ops[i].key);
    positions[owner].push_back(i);
    clients_[owner]->Enqueue(std::move(ops[i]));
  }
  // Flush every NIC; each runs its own simulator (parallel hardware).
  std::vector<KvResultMessage> results(ops.size());
  for (uint32_t nic = 0; nic < clients_.size(); nic++) {
    std::vector<KvResultMessage> partial = clients_[nic]->Flush();
    KVD_CHECK(partial.size() == positions[nic].size());
    for (size_t i = 0; i < partial.size(); i++) {
      results[positions[nic][i]] = std::move(partial[i]);
    }
  }
  return results;
}

ReliableSender::Stats MultiNicClient::endpoint_stats() const {
  ReliableSender::Stats total;
  for (const auto& client : clients_) {
    const ReliableSender::Stats& nic = client->stats();
    total.packets_sent += nic.packets_sent;
    total.retransmits += nic.retransmits;
    total.busy_retries += nic.busy_retries;
    total.corrupt_responses += nic.corrupt_responses;
    total.duplicate_responses += nic.duplicate_responses;
  }
  return total;
}

}  // namespace kvd
