// Registry of update functions λ (paper §3.2, Table 1).
//
// In the hardware, user-defined update functions are pre-registered,
// duplicated to match PCIe throughput, and compiled to pipelined logic by the
// HLS toolchain. Here a function is a C++ callable over one fixed-width
// element and a parameter; vector operations apply it element-by-element,
// exactly as the duplicated hardware lanes would.
#ifndef SRC_CORE_UPDATE_FUNCTIONS_H_
#define SRC_CORE_UPDATE_FUNCTIONS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/kv_types.h"

namespace kvd {

// λ(element, parameter) -> new element, over the element's raw bits.
using ElementFunction = std::function<uint64_t(uint64_t element, uint64_t param)>;
// Predicate for filter operations.
using ElementPredicate = std::function<bool(uint64_t element, uint64_t param)>;

class UpdateFunctionRegistry {
 public:
  // Constructs with the builtin set from kv_types.h pre-registered.
  UpdateFunctionRegistry();

  // Registers a user λ under `id` (>= kFnFirstUserFunction). In hardware this
  // is the HLS compile step; it must happen before any operation uses `id`.
  void RegisterFunction(uint16_t id, ElementFunction fn);
  void RegisterPredicate(uint16_t id, ElementPredicate fn);

  bool HasFunction(uint16_t id) const { return functions_.contains(id); }
  bool HasPredicate(uint16_t id) const { return predicates_.contains(id); }

  // Applies λ to a single element in place; returns the original element.
  Result<uint64_t> ApplyScalar(uint16_t id, std::span<uint8_t> value,
                               uint64_t param, uint8_t element_width) const;

  // update_scalar2vector: every element gets λ(elem, param).
  Status ApplyScalarToVector(uint16_t id, std::span<uint8_t> value, uint64_t param,
                             uint8_t element_width) const;

  // update_vector2vector: elementwise λ(elem, param_i).
  Status ApplyVectorToVector(uint16_t id, std::span<uint8_t> value,
                             std::span<const uint8_t> params,
                             uint8_t element_width) const;

  // reduce: Σ = λ(elem, Σ) folded left-to-right from `initial`.
  Result<uint64_t> Reduce(uint16_t id, std::span<const uint8_t> value,
                          uint64_t initial, uint8_t element_width) const;

  // filter: elements where predicate(elem, param) holds, packed in order.
  Result<std::vector<uint8_t>> Filter(uint16_t id, std::span<const uint8_t> value,
                                      uint64_t param, uint8_t element_width) const;

 private:
  static Status ValidateWidth(std::span<const uint8_t> value, uint8_t element_width);
  static uint64_t LoadElement(std::span<const uint8_t> value, size_t index,
                              uint8_t width);
  static void StoreElement(std::span<uint8_t> value, size_t index, uint8_t width,
                           uint64_t element);

  std::unordered_map<uint16_t, ElementFunction> functions_;
  std::unordered_map<uint16_t, ElementPredicate> predicates_;
};

}  // namespace kvd

#endif  // SRC_CORE_UPDATE_FUNCTIONS_H_
