// Multi-NIC deployment (paper §1, Table 3): "With 10 programmable NIC cards
// in a commodity server, we achieve 1.22 billion KV operations per second".
//
// Each NIC runs an independent KV processor over its own PCIe endpoints and
// its own partition of host memory; there is no cross-NIC communication. The
// key space is partitioned by key hash, so clients route each operation to
// the owning NIC — the same sharding a multi-server deployment would use,
// which is why scaling is near-linear.
//
// MultiNicServer owns N independent KvDirectServer instances (each with its
// own simulator: the NICs share nothing). MultiNicClient routes operations
// and aggregates results; simulated time for a mixed batch is the maximum
// across the involved NICs, matching wall-clock behaviour of parallel
// hardware.
#ifndef SRC_CORE_MULTI_NIC_H_
#define SRC_CORE_MULTI_NIC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/key_router.h"
#include "src/core/kv_direct.h"

namespace kvd {

class MultiNicServer {
 public:
  // `per_nic_config` applies to every NIC; kvs_memory_bytes is the size of
  // each NIC's partition (total capacity = num_nics x partition). Passing
  // `shared_sim` runs every NIC on one clock instead of one simulator per
  // NIC — needed when the shards are composed with subsystems that exchange
  // messages across them (src/replica).
  MultiNicServer(uint32_t num_nics, const ServerConfig& per_nic_config,
                 Simulator* shared_sim = nullptr);

  uint32_t num_nics() const { return static_cast<uint32_t>(nics_.size()); }
  KvDirectServer& nic(uint32_t i) { return *nics_[i]; }

  // The NIC owning `key` (stable hash partitioning).
  uint32_t OwnerOf(std::span<const uint8_t> key) const;

  // Untimed convenience across the cluster.
  Status Load(std::span<const uint8_t> key, std::span<const uint8_t> value);
  KvResultMessage Execute(const KvOperation& op);

  // Aggregate statistics.
  uint64_t TotalKvs() const;
  uint64_t TotalRetired() const;
  // The slowest NIC's simulated clock — the wall-clock of the parallel rig.
  SimTime MaxSimTime() const;
  // Cluster-wide submission->retirement latency distribution: every NIC's
  // histogram merged exactly (Merge sums per-bucket counts, so quantiles over
  // the merged histogram equal quantiles over the pooled samples).
  LatencyHistogram MergedLatency();

 private:
  KeyRouter router_;
  std::vector<std::unique_ptr<KvDirectServer>> nics_;
};

// Routes client operations to the owning NIC over each NIC's network model.
class MultiNicClient : public KvEndpoint {
 public:
  explicit MultiNicClient(MultiNicServer& cluster,
                          Client::Options options = Client::Options());

  Result<std::vector<uint8_t>> Get(std::span<const uint8_t> key);
  Status Put(std::span<const uint8_t> key, std::span<const uint8_t> value);
  Status Delete(std::span<const uint8_t> key);
  Result<uint64_t> Update(std::span<const uint8_t> key, uint64_t param,
                          uint16_t function_id = kFnAddU64,
                          uint8_t element_width = 8);

  // Batched pipeline: ops are partitioned per NIC, flushed in parallel
  // (each NIC's simulator runs its own packets), and results return in
  // enqueue order.
  size_t Enqueue(KvOperation op) override;
  std::vector<KvResultMessage> Flush() override;

  // Cluster-wide transport stats: the per-NIC clients' counters summed.
  ReliableSender::Stats endpoint_stats() const override;
  // The slowest NIC's clock — the wall-clock of the parallel rig. The NICs
  // share nothing, so there is no single clock to Step(); Flush() drives
  // each NIC's simulator itself.
  SimTime now() const override { return cluster_.MaxSimTime(); }
  bool Step() override { return false; }

 private:
  Client& ClientFor(std::span<const uint8_t> key);

  MultiNicServer& cluster_;
  std::vector<std::unique_ptr<Client>> clients_;  // one per NIC
  std::vector<KvOperation> pending_;
};

}  // namespace kvd

#endif  // SRC_CORE_MULTI_NIC_H_
