#include "src/core/kv_direct.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/assert.h"

namespace kvd {
namespace {

Status ToStatus(ResultCode code) {
  switch (code) {
    case ResultCode::kOk:
      return Status::Ok();
    case ResultCode::kNotFound:
      return Status::NotFound();
    case ResultCode::kOutOfMemory:
      return Status::OutOfMemory();
    case ResultCode::kInvalidArgument:
      return Status::InvalidArgument();
    case ResultCode::kBusy:
      return Status(StatusCode::kResourceBusy);
    case ResultCode::kDeadlineExceeded:
      return Status(StatusCode::kTimedOut);
    case ResultCode::kOverloaded:
      return Status(StatusCode::kResourceBusy);
    case ResultCode::kTimedOut:
      return Status(StatusCode::kTimedOut);
    case ResultCode::kWrongShard:
    case ResultCode::kMigrating:
      // Cluster shard bounces (DESIGN.md §14) are routing control flow; a
      // single server never emits them, and a client that surfaces one here
      // treats it as a retryable busy condition.
      return Status(StatusCode::kResourceBusy);
  }
  return Status::Internal();
}

}  // namespace

KvDirectServer::KvDirectServer(const ServerConfig& config, Simulator* external_sim)
    : runtime_(config, external_sim),
      endpoint_(runtime_.simulator(),
                {config.replay_cache_entries, config.replay_retain_time}) {
  // The transport endpoint's counters join the runtime's registry so one
  // exposition covers the whole node.
  MetricRegistry& metrics = runtime_.metrics_mutable();
  metrics.RegisterCounter("kvd_server_replayed_responses_total",
                          "Retransmitted requests answered from the replay cache",
                          {}, endpoint_.replayed_responses_counter());
  metrics.RegisterCounter("kvd_server_corrupt_frames_total",
                          "Request frames dropped on checksum failure", {},
                          endpoint_.corrupt_frames_counter());
  metrics.RegisterCounter("kvd_server_stale_retransmits_total",
                          "Retransmits dropped while the original executes", {},
                          endpoint_.stale_retransmits_counter());
  metrics.RegisterCounter("kvd_replay_evict_scan_steps_total",
                          "Replay-cache eviction queue entries examined", {},
                          endpoint_.evict_scan_steps_counter());
}

void KvDirectServer::Submit(KvOperation op, KvProcessor::Completion done) {
  runtime_.processor().Submit(std::move(op), std::move(done));
}

void KvDirectServer::Submit(KvOperation op, KvProcessor::Completion done,
                            OpClass cls) {
  runtime_.processor().Submit(std::move(op), std::move(done), cls);
}

void KvDirectServer::DeliverPacket(std::vector<uint8_t> payload,
                                   std::function<void(std::vector<uint8_t>)> respond,
                                   uint64_t traced_sequence) {
  PacketParser parser(std::move(payload));
  std::vector<KvOperation> ops;
  while (true) {
    Result<std::optional<KvOperation>> next = parser.Next();
    if (!next.ok()) {
      // Malformed packet: respond with a single error result.
      KvResultMessage error;
      error.code = ResultCode::kInvalidArgument;
      respond(EncodeResults({error}));
      return;
    }
    if (!next->has_value()) {
      break;
    }
    ops.push_back(std::move(**next));
  }
  if (ops.empty()) {
    respond({});
    return;
  }
  // Collect results in request order; respond when the last one retires.
  struct PacketState {
    std::vector<KvResultMessage> results;
    std::vector<uint64_t> traces;
    size_t remaining;
    std::function<void(std::vector<uint8_t>)> respond;
    RequestTracer* tracer = nullptr;
  };
  auto state = std::make_shared<PacketState>();
  state->results.resize(ops.size());
  state->remaining = ops.size();
  state->respond = std::move(respond);
  if (traced_sequence != 0 && runtime_.request_tracer().enabled()) {
    // Resolve each op's trace handle from the client-registered packet map
    // and stamp kServerReceive (first delivery wins, so retransmissions and
    // injected duplicates cannot move it).
    state->tracer = &runtime_.request_tracer();
    state->traces.resize(ops.size());
    for (size_t i = 0; i < ops.size(); i++) {
      const uint64_t handle = state->tracer->LookupOp(traced_sequence, i);
      state->traces[i] = handle;
      ops[i].trace = handle;
      if (handle != 0) {
        state->tracer->Point(handle, TracePoint::kServerReceive);
      }
    }
  }
  for (size_t i = 0; i < ops.size(); i++) {
    runtime_.processor().Submit(std::move(ops[i]), [state, i](KvResultMessage result) {
      state->results[i] = std::move(result);
      if (--state->remaining == 0) {
        if (state->tracer != nullptr) {
          for (const uint64_t handle : state->traces) {
            if (handle != 0) {
              state->tracer->Point(handle, TracePoint::kResponseSent);
            }
          }
        }
        state->respond(EncodeResults(state->results));
      }
    });
  }
}

void KvDirectServer::DeliverFrame(std::vector<uint8_t> packet,
                                  std::function<void(std::vector<uint8_t>)> respond) {
  // The endpoint drops corrupt frames (the client's retransmission timer
  // covers them), replays cached responses, and swallows retransmissions of
  // still-executing sequences; only genuinely new frames come back.
  std::optional<Frame> frame = endpoint_.Accept(packet, respond);
  if (!frame.has_value()) {
    return;
  }
  endpoint_.Admit(frame->sequence);
  const uint64_t sequence = frame->sequence;
  DeliverPacket(
      std::move(frame->payload),
      [this, sequence, respond = std::move(respond)](
          std::vector<uint8_t> response) {
        respond(endpoint_.Complete(sequence, response, /*cache=*/true));
      },
      /*traced_sequence=*/sequence);
}

KvResultMessage KvDirectServer::Execute(const KvOperation& op) {
  return runtime_.processor().ExecuteFunctional(op);
}

Status KvDirectServer::Load(std::span<const uint8_t> key,
                            std::span<const uint8_t> value) {
  return runtime_.index().Put(key, value);
}

Client::Client(KvDirectServer& server, Options options)
    : server_(server),
      options_(options),
      next_sequence_(server.AcquireClientSequenceBase()),
      sender_(
          server.simulator(),
          ReliableSender::RetryPolicy{
              .timeout = options_.retry.timeout,
              .max_attempts = options_.retry.max_attempts,
              .backoff_shift_cap = 20,
              .attempts_per_target = 0,
              .num_targets = 1,
              .jitter = options_.retry.jitter,
              // The sequence base is unique per client on a server, so each
              // client gets its own deterministic jitter stream.
              .jitter_seed = next_sequence_,
              .retry_budget = options_.retry.retry_budget,
              .retry_refill_per_success = options_.retry.retry_refill_per_success},
          &stats_, [this]() -> RequestTracer& { return server_.request_tracer(); },
          [this](const ReliableSender::PacketPtr& packet) { Wire(packet); },
          [this](const ReliableSender::PacketPtr& packet) { OnFail(packet); }) {}


KvResultMessage Client::Call(KvOperation op) {
  pending_.push_back(std::move(op));
  std::vector<KvResultMessage> results = Flush();
  KVD_CHECK(results.size() == 1);
  return std::move(results[0]);
}

Result<std::vector<uint8_t>> Client::Get(std::span<const uint8_t> key) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key.assign(key.begin(), key.end());
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Status Client::Put(std::span<const uint8_t> key, std::span<const uint8_t> value) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key.assign(key.begin(), key.end());
  op.value.assign(value.begin(), value.end());
  return ToStatus(Call(std::move(op)).code);
}

Status Client::Delete(std::span<const uint8_t> key) {
  KvOperation op;
  op.opcode = Opcode::kDelete;
  op.key.assign(key.begin(), key.end());
  return ToStatus(Call(std::move(op)).code);
}

Result<uint64_t> Client::Update(std::span<const uint8_t> key, uint64_t param,
                                uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return result.scalar;
}

Result<std::vector<uint8_t>> Client::UpdateVectorWithScalar(
    std::span<const uint8_t> key, uint64_t param, uint16_t function_id,
    uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalarVector;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Result<std::vector<uint8_t>> Client::UpdateVectorWithVector(
    std::span<const uint8_t> key, std::span<const uint8_t> params,
    uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateVector;
  op.key.assign(key.begin(), key.end());
  op.value.assign(params.begin(), params.end());
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Result<uint64_t> Client::Reduce(std::span<const uint8_t> key, uint64_t initial,
                                uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kReduce;
  op.key.assign(key.begin(), key.end());
  op.param = initial;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return result.scalar;
}

Result<std::vector<uint8_t>> Client::Filter(std::span<const uint8_t> key,
                                            uint64_t param, uint16_t function_id,
                                            uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kFilter;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

size_t Client::Enqueue(KvOperation op) {
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

std::vector<KvResultMessage> Client::Flush() {
  std::vector<KvOperation> ops = std::move(pending_);
  pending_.clear();
  if (ops.empty()) {
    return {};
  }
  return options_.retry.enabled ? FlushReliable(std::move(ops))
                                : FlushUnreliable(std::move(ops));
}

// Per-flush state. Lives in a shared_ptr because injected duplicates can
// deliver a response *after* the flush loop has already drained — such late
// arrivals must find live state, not a dead stack frame.
struct Client::FlushState {
  std::vector<KvResultMessage> results;
  std::vector<uint64_t> traces;  // per-op trace handles (0 when untraced)
  size_t outstanding = 0;
};

// Per-packet state shared by the transmission chain, the retransmission
// timer, and (possibly duplicated) response deliveries. The retry fields
// (sequence, framed bytes, attempts, completion) live in the ReliablePacket
// base the sender drives.
struct Client::PacketCtx : ReliablePacket {
  std::vector<size_t> op_indices;  // result slots, in packet order
  std::shared_ptr<FlushState> flush;
};

void Client::RunFor(SimTime duration) {
  Simulator& sim = server_.simulator();
  bool fired = false;
  sim.ScheduleAt(sim.Now() + duration, [&fired] { fired = true; });
  while (!fired) {
    KVD_CHECK(sim.Step());
  }
}

// One wire round trip for the sender: frame copy to the server, framed
// delivery, framed response back to OnResponse. Fault sites on both wire
// directions may drop/duplicate/corrupt; the sender's timer recovers.
void Client::Wire(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  std::vector<uint8_t> copy = ctx->framed;
  server_.network().SendPayloadToServer(
      std::move(copy),
      [this, ctx](std::vector<uint8_t> request) {
        server_.DeliverFrame(
            std::move(request), [this, ctx](std::vector<uint8_t> response) {
              server_.network().SendPayloadToClient(
                  std::move(response),
                  [this, ctx](std::vector<uint8_t> delivered) {
                    OnResponse(ctx, std::move(delivered));
                  },
                  ctx->traces);
            });
      },
      ctx->traces);
}

// The sender gave up on the packet: retransmission attempts exhausted
// (kTimedOut) or its deadline passed / budget ran dry. Surface the sender's
// fail code on every operation in the packet and unblock the flush — callers
// get a status, not a dead process.
void Client::OnFail(const ReliableSender::PacketPtr& packet) {
  auto ctx = std::static_pointer_cast<PacketCtx>(packet);
  KvResultMessage failed;
  failed.code = ctx->fail_code;
  for (const size_t idx : ctx->op_indices) {
    ctx->flush->results[idx] = failed;
  }
  RequestTracer& rt = server_.request_tracer();
  if (!ctx->traces.empty() && rt.enabled()) {
    for (const uint64_t handle : ctx->traces) {
      if (handle != 0) {
        rt.Finish(handle, ctx->fail_code);
      }
    }
  }
  ctx->flush->outstanding--;
}

void Client::OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                        std::vector<uint8_t> packet) {
  std::optional<std::vector<uint8_t>> payload =
      sender_.AcceptResponse(ctx, packet);
  if (!payload.has_value()) {
    return;  // duplicate, corrupt, or foreign frame — counted by the sender
  }
  Result<std::vector<KvResultMessage>> decoded = DecodeResults(*payload);
  if (!decoded.ok()) {
    sender_.NoteCorruptResponse();
    return;
  }
  std::vector<KvResultMessage>& results = ctx->flush->results;
  if (decoded->size() == ctx->op_indices.size()) {
    for (size_t i = 0; i < decoded->size(); i++) {
      results[ctx->op_indices[i]] = std::move((*decoded)[i]);
    }
  } else if (decoded->size() == 1 &&
             (*decoded)[0].code == ResultCode::kInvalidArgument) {
    // The server rejected the whole packet as malformed.
    for (const size_t idx : ctx->op_indices) {
      results[idx] = (*decoded)[0];
    }
  } else {
    sender_.NoteCorruptResponse();  // checksum-valid but inconsistent: re-ask
    return;
  }
  ctx->completed = true;
  ctx->flush->outstanding--;
  RequestTracer& rt = server_.request_tracer();
  if (!ctx->traces.empty() && rt.enabled()) {
    for (size_t i = 0; i < ctx->op_indices.size(); i++) {
      const uint64_t handle = ctx->traces[i];
      const ResultCode code = results[ctx->op_indices[i]].code;
      if (handle == 0 || code == ResultCode::kBusy ||
          code == ResultCode::kOverloaded) {
        continue;  // bounced ops stay live: re-sent under a new sequence
      }
      rt.Finish(handle, code);
    }
  }
}

void Client::SendBatch(const std::vector<KvOperation>& ops,
                       const std::vector<size_t>& indices,
                       const std::shared_ptr<FlushState>& flush) {
  // The frame header rides inside the packet budget, so a full batch still
  // fits one wire MTU instead of spilling into a second segment.
  const uint32_t budget =
      options_.batch_payload_bytes > kFrameHeaderBytes
          ? options_.batch_payload_bytes - static_cast<uint32_t>(kFrameHeaderBytes)
          : options_.batch_payload_bytes;
  size_t next = 0;
  while (next < indices.size()) {
    PacketBuilder builder(budget, options_.enable_compression);
    const size_t first = next;
    while (next < indices.size() && next - first < options_.max_ops_per_packet &&
           builder.Add(ops[indices[next]])) {
      next++;
    }
    KVD_CHECK_MSG(next > first, "operation exceeds packet payload budget");
    auto ctx = std::make_shared<PacketCtx>();
    ctx->sequence = next_sequence_++;
    ctx->op_indices.assign(indices.begin() + first, indices.begin() + next);
    ctx->framed = FramePacket(ctx->sequence, builder.Finish());
    ctx->flush = flush;
    // The packet dies with its most urgent op: past that point the sender
    // stops retransmitting the whole frame.
    for (const size_t idx : ctx->op_indices) {
      const SimTime d = ops[idx].deadline;
      if (d != 0 && (ctx->deadline == 0 || d < ctx->deadline)) {
        ctx->deadline = d;
      }
    }
    RequestTracer& rt = server_.request_tracer();
    if (rt.enabled()) {
      // First send starts the trace; a busy re-send keeps its handle and
      // re-registers it under the new wire sequence so the server-side
      // lookup still resolves.
      ctx->traces.reserve(ctx->op_indices.size());
      for (size_t i = 0; i < ctx->op_indices.size(); i++) {
        const size_t idx = ctx->op_indices[i];
        uint64_t& handle = flush->traces[idx];
        if (handle == 0) {
          handle = rt.Start(ops[idx].opcode, ctx->sequence,
                            static_cast<uint32_t>(i));
        }
        ctx->traces.push_back(handle);
      }
      rt.RegisterPacket(ctx->sequence, ctx->traces);
    }
    flush->outstanding++;
    stats_.packets_sent++;
    sender_.Send(ctx);
  }
}

std::vector<KvResultMessage> Client::FlushReliable(std::vector<KvOperation> ops) {
  Simulator& sim = server_.simulator();
  auto flush = std::make_shared<FlushState>();
  flush->results.resize(ops.size());
  flush->traces.resize(ops.size(), 0);

  if (options_.retry.op_budget != 0) {
    // Stamp each op's absolute deadline from the client budget; a caller who
    // already set one keeps the tighter of its own choice.
    for (KvOperation& op : ops) {
      const SimTime budget_deadline = sim.Now() + options_.retry.op_budget;
      if (op.deadline == 0 || op.deadline > budget_deadline) {
        op.deadline = budget_deadline;
      }
    }
  }

  std::vector<size_t> indices(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    indices[i] = i;
  }
  uint32_t busy_round = 0;
  while (true) {
    SendBatch(ops, indices, flush);
    while (flush->outstanding > 0) {
      KVD_CHECK_MSG(sim.Step(), "simulation idle with packets outstanding");
    }
    // Operations bounced with kBusy/kOverloaded are re-sent — and only
    // those, under new sequences: their effects did not happen, while the
    // rest of the packet already executed and must not run twice. An op
    // whose deadline has passed gives up as kDeadlineExceeded instead.
    RequestTracer& tracer = server_.request_tracer();
    std::vector<size_t> busy;
    for (const size_t idx : indices) {
      const ResultCode code = flush->results[idx].code;
      if (code != ResultCode::kBusy && code != ResultCode::kOverloaded) {
        continue;
      }
      if (ops[idx].deadline != 0 && sim.Now() >= ops[idx].deadline) {
        flush->results[idx].code = ResultCode::kDeadlineExceeded;
        if (tracer.enabled() && flush->traces[idx] != 0) {
          tracer.Finish(flush->traces[idx], ResultCode::kDeadlineExceeded);
        }
        continue;
      }
      busy.push_back(idx);
    }
    if (busy.empty()) {
      break;
    }
    if (busy_round >= options_.retry.max_busy_retries) {
      // Budget exhausted: the still-busy operations time out instead of
      // retrying forever (or killing the process).
      KvResultMessage timed_out;
      timed_out.code = ResultCode::kTimedOut;
      RequestTracer& rt = server_.request_tracer();
      for (const size_t idx : busy) {
        flush->results[idx] = timed_out;
        if (rt.enabled() && flush->traces[idx] != 0) {
          rt.Finish(flush->traces[idx], ResultCode::kTimedOut);
        }
      }
      break;
    }
    const SimTime backoff = options_.retry.busy_backoff
                            << std::min(busy_round, uint32_t{20});
    busy_round++;
    stats_.busy_retries += busy.size();
    const SimTime backoff_start = sim.Now();
    RunFor(backoff);
    RequestTracer& rt = server_.request_tracer();
    if (rt.enabled()) {
      for (const size_t idx : busy) {
        rt.Span(flush->traces[idx], SpanKind::kBusyRetry, backoff_start,
                sim.Now(), busy_round);
      }
    }
    indices = std::move(busy);
  }
  return std::move(flush->results);
}

std::vector<KvResultMessage> Client::FlushUnreliable(std::vector<KvOperation> ops) {
  std::vector<KvResultMessage> results(ops.size());
  size_t packets_outstanding = 0;

  Simulator& sim = server_.simulator();
  NetworkModel& network = server_.network();

  // Split the operation stream into packets under the payload budget; each
  // packet independently traverses client -> server -> client.
  size_t next_op = 0;
  size_t result_base = 0;
  while (next_op < ops.size()) {
    PacketBuilder builder(options_.batch_payload_bytes, options_.enable_compression);
    const size_t first = next_op;
    while (next_op < ops.size() &&
           next_op - first < options_.max_ops_per_packet &&
           builder.Add(ops[next_op])) {
      next_op++;
    }
    KVD_CHECK_MSG(next_op > first, "operation exceeds packet payload budget");
    const size_t count = next_op - first;
    std::vector<uint8_t> payload = builder.Finish();
    stats_.packets_sent++;
    packets_outstanding++;

    const size_t base = result_base;
    result_base += count;
    // The payload size must be read before the move below captures it (the
    // evaluation order of arguments vs. captures is unspecified).
    const auto payload_size = static_cast<uint32_t>(payload.size());
    network.SendToServer(
        payload_size,
        [this, payload = std::move(payload), base, count, &results, &network,
         &packets_outstanding]() mutable {
          server_.DeliverPacket(
              std::move(payload),
              [base, count, &results, &network,
               &packets_outstanding](std::vector<uint8_t> response) {
                const auto response_size = static_cast<uint32_t>(response.size());
                network.SendToClient(
                    response_size,
                    [base, count, response = std::move(response), &results,
                     &packets_outstanding] {
                      Result<std::vector<KvResultMessage>> decoded =
                          DecodeResults(response);
                      KVD_CHECK(decoded.ok());
                      KVD_CHECK(decoded->size() == count);
                      for (size_t i = 0; i < count; i++) {
                        results[base + i] = std::move((*decoded)[i]);
                      }
                      packets_outstanding--;
                    });
              });
        });
  }
  while (packets_outstanding > 0) {
    KVD_CHECK_MSG(sim.Step(), "simulation idle with packets outstanding");
  }
  return results;
}

bool Client::SubmitPacket(std::vector<uint8_t> ops_payload,
                          std::function<void()> done) {
  stats_.packets_sent++;
  NetworkModel& network = server_.network();
  // The payload size must be read before the move below captures it (the
  // evaluation order of arguments vs. captures is unspecified).
  const auto payload_size = static_cast<uint32_t>(ops_payload.size());
  network.SendToServer(
      payload_size,
      [this, payload = std::move(ops_payload), done = std::move(done),
       &network]() mutable {
        server_.DeliverPacket(
            std::move(payload),
            [done = std::move(done), &network](std::vector<uint8_t> response) {
              const auto response_size = static_cast<uint32_t>(response.size());
              network.SendToClient(response_size,
                                   [done = std::move(done)] { done(); });
            });
      });
  return true;
}

}  // namespace kvd
