#include "src/core/kv_direct.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/assert.h"

namespace kvd {
namespace {

Status ToStatus(ResultCode code) {
  switch (code) {
    case ResultCode::kOk:
      return Status::Ok();
    case ResultCode::kNotFound:
      return Status::NotFound();
    case ResultCode::kOutOfMemory:
      return Status::OutOfMemory();
    case ResultCode::kInvalidArgument:
      return Status::InvalidArgument();
    case ResultCode::kBusy:
      return Status(StatusCode::kResourceBusy);
  }
  return Status::Internal();
}

}  // namespace

void ServerConfig::AutoTune(uint32_t kv_bytes, bool long_tail) {
  long_tail_workload = long_tail;
  constexpr double kSlotPacking = 0.7;  // usable fraction of hash slots
  if (kv_bytes <= kMaxInlineKvBytes) {
    // Inline everything of this size: the corpus lives in the hash index, so
    // the index takes nearly the whole region (a margin remains for chained
    // buckets and stragglers).
    inline_threshold_bytes = std::min<uint32_t>(kv_bytes, kMaxInlineKvBytes);
    hash_index_ratio = 0.9;
  } else {
    // Non-inline: the index holds one 5-byte slot per KV, the heap holds the
    // rounded slab. Ratio = index bytes : total bytes per KV, scale-free.
    inline_threshold_bytes = 10;
    const double index_per_kv = kSlotBytes / kSlotPacking;
    const double slab_per_kv =
        static_cast<double>(std::bit_ceil(kv_bytes + HashIndex::kSlabHeaderBytes));
    hash_index_ratio = index_per_kv / (index_per_kv + slab_per_kv);
  }
  // Load dispatch ratio from the paper's balance condition (§3.3.4).
  const double k = static_cast<double>(nic_dram.capacity_bytes) /
                   static_cast<double>(kvs_memory_bytes);
  const double pcie_tput =
      pcie.link.bandwidth_bytes_per_sec * pcie.num_links * 0.84;  // achievable
  dispatch_ratio = LoadDispatcher::OptimalDispatchRatio(
      pcie_tput, nic_dram.bandwidth_bytes_per_sec, std::min(k, 1.0), long_tail,
      static_cast<double>(kvs_memory_bytes) / std::max<uint32_t>(kv_bytes, 1));
}

KvDirectServer::KvDirectServer(const ServerConfig& config, Simulator* external_sim)
    : config_(config),
      owned_sim_(external_sim != nullptr ? nullptr : std::make_unique<Simulator>()),
      sim_(external_sim != nullptr ? *external_sim : *owned_sim_) {
  HashIndexConfig index_config;
  index_config.memory_base = 0;
  index_config.memory_size = config.kvs_memory_bytes;
  index_config.hash_index_ratio = config.hash_index_ratio;
  index_config.inline_threshold_bytes = config.inline_threshold_bytes;
  index_config.min_slab_bytes = config.min_slab_bytes;
  index_config.max_slab_bytes = config.max_slab_bytes;
  const auto regions = index_config.ComputeRegions();

  memory_ = std::make_unique<HostMemory>(config.kvs_memory_bytes);
  direct_engine_ = std::make_unique<DirectEngine>(*memory_);
  trace_engine_ = std::make_unique<TraceRecordingEngine>(*direct_engine_);

  SlabConfig slab_config;
  slab_config.region_base = regions.heap_base;
  slab_config.region_size = regions.heap_size;
  slab_config.min_slab_bytes = config.min_slab_bytes;
  slab_config.max_slab_bytes = config.max_slab_bytes;
  allocator_ = std::make_unique<SlabAllocator>(slab_config);

  index_ = std::make_unique<HashIndex>(*trace_engine_, *allocator_, index_config);

  fault_ = std::make_unique<FaultInjector>(config.faults);
  dma_ = std::make_unique<DmaEngine>(sim_, config.pcie);
  nic_dram_ = std::make_unique<NicDram>(sim_, config.nic_dram);

  LoadDispatcherConfig dispatch_config;
  dispatch_config.policy = config.dispatch_policy;
  dispatch_config.host_memory_bytes = config.kvs_memory_bytes;
  dispatch_config.nic_dram_bytes = config.nic_dram.capacity_bytes;
  if (config.dispatch_ratio >= 0) {
    dispatch_config.dispatch_ratio = config.dispatch_ratio;
  } else {
    const double k = std::min(1.0, static_cast<double>(config.nic_dram.capacity_bytes) /
                                       static_cast<double>(config.kvs_memory_bytes));
    dispatch_config.dispatch_ratio = LoadDispatcher::OptimalDispatchRatio(
        config.pcie.link.bandwidth_bytes_per_sec * config.pcie.num_links * 0.84,
        config.nic_dram.bandwidth_bytes_per_sec, k, config.long_tail_workload);
  }
  dispatcher_ = std::make_unique<LoadDispatcher>(sim_, *dma_, *nic_dram_,
                                                 dispatch_config);

  network_ = std::make_unique<NetworkModel>(sim_, config.network);

  processor_ = std::make_unique<KvProcessor>(sim_, *index_, *trace_engine_,
                                             *dispatcher_, registry_,
                                             config.processor);
  processor_->AttachSlabSyncStats(&allocator_->sync_stats());

  // Fault wiring: one injector shared by every site so the plan's per-site
  // streams stay independent of which subsystems are active.
  dma_->SetFaultInjector(fault_.get());
  nic_dram_->SetFaultInjector(fault_.get());
  network_->SetFaultInjector(fault_.get());

  // Request tracing: the tracer feeds the breakdown, the SLO monitor, and
  // the flight-recorder ring; SLO breaches fire the recorder. Components get
  // the pointers unconditionally (a zero handle short-circuits every hook).
  request_tracer_.set_enabled(config.enable_request_tracing);
  request_tracer_.SetBreakdown(&breakdown_);
  slo_monitor_.Configure(config.slo);
  request_tracer_.SetSloMonitor(&slo_monitor_);
  flight_recorder_.Configure(config.flight);
  flight_recorder_.set_enabled(config.enable_request_tracing);
  flight_recorder_.SetRequestTracer(&request_tracer_);
  flight_recorder_.SetMetricRegistry(&metrics_);
  flight_recorder_.SetEventTracer(&tracer_);
  request_tracer_.set_on_complete(
      [this](const OpTrace& trace) { active_flight_->OnTraceComplete(trace); });
  slo_monitor_.set_on_breach([this](const std::string& detail) {
    active_flight_->Trigger(FlightTrigger::kSloBreach, detail);
  });
  processor_->SetRequestTracer(&request_tracer_);
  processor_->SetFlightRecorder(&flight_recorder_);
  dispatcher_->SetRequestTracer(&request_tracer_);
  dispatcher_->SetFlightRecorder(&flight_recorder_);
  dma_->SetRequestTracer(&request_tracer_);
  nic_dram_->SetRequestTracer(&request_tracer_);
  network_->SetRequestTracer(&request_tracer_);
  fault_->SetFlightRecorder(&flight_recorder_);
  if (config.enable_request_tracing) {
    // Registered only when tracing is on, so the default metric exposition
    // is byte-identical to the untraced build.
    request_tracer_.RegisterMetrics(metrics_);
    breakdown_.RegisterMetrics(metrics_);
    slo_monitor_.RegisterMetrics(metrics_);
    flight_recorder_.RegisterMetrics(metrics_);
  }

  // Observability: every subsystem registers readers over its live stats into
  // the shared registry and learns about the tracer. Neither changes timing.
  tracer_.set_enabled(config.enable_tracing);
  metrics_.RegisterCounter("kvd_events_dropped_total",
                           "Events dropped at the EventTracer capacity limit",
                           {}, [this] { return tracer_.dropped(); });
  fault_->RegisterMetrics(metrics_);
  fault_->SetTracer(&tracer_);
  metrics_.RegisterCounter("kvd_server_replayed_responses_total",
                           "Retransmitted requests answered from the replay cache",
                           {}, &replayed_responses_);
  metrics_.RegisterCounter("kvd_server_corrupt_frames_total",
                           "Request frames dropped on checksum failure", {},
                           &corrupt_frames_);
  metrics_.RegisterCounter("kvd_server_stale_retransmits_total",
                           "Retransmits dropped while the original executes", {},
                           &stale_retransmits_);
  processor_->RegisterMetrics(metrics_);
  processor_->SetTracer(&tracer_);
  index_->RegisterMetrics(metrics_);
  allocator_->RegisterMetrics(metrics_);
  allocator_->SetTracer(&tracer_);
  dispatcher_->RegisterMetrics(metrics_);
  dispatcher_->SetTracer(&tracer_);
  dma_->RegisterMetrics(metrics_);
  dma_->SetTracer(&tracer_);
  nic_dram_->RegisterMetrics(metrics_);
  nic_dram_->SetTracer(&tracer_);
  network_->RegisterMetrics(metrics_);
  network_->SetTracer(&tracer_);
}

void KvDirectServer::UseRequestTracer(RequestTracer* tracer) {
  KVD_CHECK(tracer != nullptr);
  active_request_tracer_ = tracer;
  processor_->SetRequestTracer(tracer);
  dispatcher_->SetRequestTracer(tracer);
  dma_->SetRequestTracer(tracer);
  nic_dram_->SetRequestTracer(tracer);
  network_->SetRequestTracer(tracer);
}

void KvDirectServer::UseFlightRecorder(FlightRecorder* recorder) {
  KVD_CHECK(recorder != nullptr);
  active_flight_ = recorder;
  processor_->SetFlightRecorder(recorder);
  dispatcher_->SetFlightRecorder(recorder);
  fault_->SetFlightRecorder(recorder);
}

void KvDirectServer::Submit(KvOperation op, KvProcessor::Completion done) {
  processor_->Submit(std::move(op), std::move(done));
}

void KvDirectServer::DeliverPacket(std::vector<uint8_t> payload,
                                   std::function<void(std::vector<uint8_t>)> respond,
                                   uint64_t traced_sequence) {
  PacketParser parser(std::move(payload));
  std::vector<KvOperation> ops;
  while (true) {
    Result<std::optional<KvOperation>> next = parser.Next();
    if (!next.ok()) {
      // Malformed packet: respond with a single error result.
      KvResultMessage error;
      error.code = ResultCode::kInvalidArgument;
      respond(EncodeResults({error}));
      return;
    }
    if (!next->has_value()) {
      break;
    }
    ops.push_back(std::move(**next));
  }
  if (ops.empty()) {
    respond({});
    return;
  }
  // Collect results in request order; respond when the last one retires.
  struct PacketState {
    std::vector<KvResultMessage> results;
    std::vector<uint64_t> traces;
    size_t remaining;
    std::function<void(std::vector<uint8_t>)> respond;
    RequestTracer* tracer = nullptr;
  };
  auto state = std::make_shared<PacketState>();
  state->results.resize(ops.size());
  state->remaining = ops.size();
  state->respond = std::move(respond);
  if (traced_sequence != 0 && active_request_tracer_->enabled()) {
    // Resolve each op's trace handle from the client-registered packet map
    // and stamp kServerReceive (first delivery wins, so retransmissions and
    // injected duplicates cannot move it).
    state->tracer = active_request_tracer_;
    state->traces.resize(ops.size());
    for (size_t i = 0; i < ops.size(); i++) {
      const uint64_t handle = state->tracer->LookupOp(traced_sequence, i);
      state->traces[i] = handle;
      ops[i].trace = handle;
      if (handle != 0) {
        state->tracer->Point(handle, TracePoint::kServerReceive);
      }
    }
  }
  for (size_t i = 0; i < ops.size(); i++) {
    processor_->Submit(std::move(ops[i]), [state, i](KvResultMessage result) {
      state->results[i] = std::move(result);
      if (--state->remaining == 0) {
        if (state->tracer != nullptr) {
          for (const uint64_t handle : state->traces) {
            if (handle != 0) {
              state->tracer->Point(handle, TracePoint::kResponseSent);
            }
          }
        }
        state->respond(EncodeResults(state->results));
      }
    });
  }
}

void KvDirectServer::DeliverFrame(std::vector<uint8_t> packet,
                                  std::function<void(std::vector<uint8_t>)> respond) {
  Result<Frame> parsed = ParseFrame(packet);
  if (!parsed.ok()) {
    // Corrupted or truncated in flight: drop silently; the client's
    // retransmission timer covers it.
    corrupt_frames_++;
    return;
  }
  Frame frame = std::move(*parsed);
  if (const auto it = replay_.find(frame.sequence); it != replay_.end()) {
    if (it->second.done) {
      // Idempotent replay: the original executed, its response was lost.
      replayed_responses_++;
      respond(it->second.response);
    } else {
      // The original is still executing; its eventual response (or the next
      // retransmission) resolves this sequence.
      stale_retransmits_++;
    }
    return;
  }
  // Admit the new sequence, evicting the oldest *completed* entries beyond
  // the cache budget. An in-flight entry must survive until it responds, and
  // a recently completed one must outlive any retransmission still in flight
  // (the client may have re-sent just before the response landed); both stop
  // eviction, letting the cache run over budget rather than break
  // exactly-once execution.
  while (replay_order_.size() >= config_.replay_cache_entries) {
    const uint64_t victim = replay_order_.front();
    const auto vit = replay_.find(victim);
    if (vit != replay_.end() &&
        (!vit->second.done ||
         sim_.Now() < vit->second.done_at + config_.replay_retain_time)) {
      break;
    }
    replay_order_.pop_front();
    if (vit != replay_.end()) {
      replay_.erase(vit);
    }
  }
  replay_.emplace(frame.sequence, ReplayEntry{});
  replay_order_.push_back(frame.sequence);
  const uint64_t sequence = frame.sequence;
  DeliverPacket(
      std::move(frame.payload),
      [this, sequence, respond = std::move(respond)](
          std::vector<uint8_t> response) {
        std::vector<uint8_t> framed = FramePacket(sequence, response);
        if (const auto it = replay_.find(sequence); it != replay_.end()) {
          it->second.done = true;
          it->second.done_at = sim_.Now();
          it->second.response = framed;
        }
        respond(std::move(framed));
      },
      /*traced_sequence=*/sequence);
}

KvResultMessage KvDirectServer::Execute(const KvOperation& op) {
  return processor_->ExecuteFunctional(op);
}

Status KvDirectServer::Load(std::span<const uint8_t> key,
                            std::span<const uint8_t> value) {
  return index_->Put(key, value);
}

Client::Client(KvDirectServer& server, Options options)
    : server_(server),
      options_(options),
      next_sequence_(server.AcquireClientSequenceBase()) {}


KvResultMessage Client::Call(KvOperation op) {
  pending_.push_back(std::move(op));
  std::vector<KvResultMessage> results = Flush();
  KVD_CHECK(results.size() == 1);
  return std::move(results[0]);
}

Result<std::vector<uint8_t>> Client::Get(std::span<const uint8_t> key) {
  KvOperation op;
  op.opcode = Opcode::kGet;
  op.key.assign(key.begin(), key.end());
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Status Client::Put(std::span<const uint8_t> key, std::span<const uint8_t> value) {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key.assign(key.begin(), key.end());
  op.value.assign(value.begin(), value.end());
  return ToStatus(Call(std::move(op)).code);
}

Status Client::Delete(std::span<const uint8_t> key) {
  KvOperation op;
  op.opcode = Opcode::kDelete;
  op.key.assign(key.begin(), key.end());
  return ToStatus(Call(std::move(op)).code);
}

Result<uint64_t> Client::Update(std::span<const uint8_t> key, uint64_t param,
                                uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalar;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return result.scalar;
}

Result<std::vector<uint8_t>> Client::UpdateVectorWithScalar(
    std::span<const uint8_t> key, uint64_t param, uint16_t function_id,
    uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateScalarVector;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Result<std::vector<uint8_t>> Client::UpdateVectorWithVector(
    std::span<const uint8_t> key, std::span<const uint8_t> params,
    uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kUpdateVector;
  op.key.assign(key.begin(), key.end());
  op.value.assign(params.begin(), params.end());
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

Result<uint64_t> Client::Reduce(std::span<const uint8_t> key, uint64_t initial,
                                uint16_t function_id, uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kReduce;
  op.key.assign(key.begin(), key.end());
  op.param = initial;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return result.scalar;
}

Result<std::vector<uint8_t>> Client::Filter(std::span<const uint8_t> key,
                                            uint64_t param, uint16_t function_id,
                                            uint8_t element_width) {
  KvOperation op;
  op.opcode = Opcode::kFilter;
  op.key.assign(key.begin(), key.end());
  op.param = param;
  op.function_id = function_id;
  op.element_width = element_width;
  KvResultMessage result = Call(std::move(op));
  if (result.code != ResultCode::kOk) {
    return ToStatus(result.code);
  }
  return std::move(result.value);
}

size_t Client::Enqueue(KvOperation op) {
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

std::vector<KvResultMessage> Client::Flush() {
  std::vector<KvOperation> ops = std::move(pending_);
  pending_.clear();
  if (ops.empty()) {
    return {};
  }
  return options_.retry.enabled ? FlushReliable(std::move(ops))
                                : FlushUnreliable(std::move(ops));
}

// Per-flush state. Lives in a shared_ptr because injected duplicates can
// deliver a response *after* the flush loop has already drained — such late
// arrivals must find live state, not a dead stack frame.
struct Client::FlushState {
  std::vector<KvResultMessage> results;
  std::vector<uint64_t> traces;  // per-op trace handles (0 when untraced)
  size_t outstanding = 0;
};

// Per-packet state shared by the transmission chain, the retransmission
// timer, and (possibly duplicated) response deliveries.
struct Client::PacketCtx {
  uint64_t sequence = 0;
  std::vector<uint8_t> frame;       // full framed bytes, re-sent verbatim
  std::vector<size_t> op_indices;   // result slots, in packet order
  std::vector<uint64_t> traces;     // trace handles, in packet order
  uint32_t attempts = 0;
  bool completed = false;
  std::shared_ptr<FlushState> flush;
};

void Client::RunFor(SimTime duration) {
  Simulator& sim = server_.simulator();
  bool fired = false;
  sim.ScheduleAt(sim.Now() + duration, [&fired] { fired = true; });
  while (!fired) {
    KVD_CHECK(sim.Step());
  }
}

void Client::TransmitPacket(const std::shared_ptr<PacketCtx>& ctx) {
  Simulator& sim = server_.simulator();
  ctx->attempts++;
  if (ctx->attempts > 1) {
    stats_.retransmits++;
  }
  RequestTracer& rt = server_.request_tracer();
  if (!ctx->traces.empty() && rt.enabled()) {
    for (const uint64_t handle : ctx->traces) {
      rt.CountAttempt(handle);
      if (ctx->attempts > 1) {
        // Timeout-driven retransmission marker (detail: attempt number).
        rt.Span(handle, SpanKind::kRetransmit, sim.Now(), sim.Now(),
                ctx->attempts - 1);
      }
    }
  }
  std::vector<uint8_t> copy = ctx->frame;
  server_.network().SendPayloadToServer(
      std::move(copy),
      [this, ctx](std::vector<uint8_t> request) {
        server_.DeliverFrame(
            std::move(request), [this, ctx](std::vector<uint8_t> response) {
              server_.network().SendPayloadToClient(
                  std::move(response),
                  [this, ctx](std::vector<uint8_t> delivered) {
                    OnResponse(ctx, std::move(delivered));
                  },
                  ctx->traces);
            });
      },
      ctx->traces);
  // Retransmission timer for this attempt; exponential backoff. A timer that
  // fires after completion (or after a newer attempt took over) is a no-op.
  const uint32_t attempt = ctx->attempts;
  const SimTime timeout = options_.retry.timeout
                          << std::min(attempt - 1, uint32_t{20});
  sim.ScheduleAt(sim.Now() + timeout, [this, ctx, attempt] {
    if (ctx->completed || ctx->attempts != attempt) {
      return;
    }
    KVD_CHECK_MSG(attempt < options_.retry.max_attempts,
                  "request retransmissions exhausted");
    TransmitPacket(ctx);
  });
}

void Client::OnResponse(const std::shared_ptr<PacketCtx>& ctx,
                        std::vector<uint8_t> packet) {
  if (ctx->completed) {
    stats_.duplicate_responses++;  // injected duplicate or late retransmit
    return;
  }
  Result<Frame> parsed = ParseFrame(packet);
  if (!parsed.ok() || parsed->sequence != ctx->sequence) {
    // Bit-flipped in flight (or a foreign frame): await the timer.
    stats_.corrupt_responses++;
    return;
  }
  Result<std::vector<KvResultMessage>> decoded = DecodeResults(parsed->payload);
  if (!decoded.ok()) {
    stats_.corrupt_responses++;
    return;
  }
  std::vector<KvResultMessage>& results = ctx->flush->results;
  if (decoded->size() == ctx->op_indices.size()) {
    for (size_t i = 0; i < decoded->size(); i++) {
      results[ctx->op_indices[i]] = std::move((*decoded)[i]);
    }
  } else if (decoded->size() == 1 &&
             (*decoded)[0].code == ResultCode::kInvalidArgument) {
    // The server rejected the whole packet as malformed.
    for (const size_t idx : ctx->op_indices) {
      results[idx] = (*decoded)[0];
    }
  } else {
    stats_.corrupt_responses++;  // checksum-valid but inconsistent: re-ask
    return;
  }
  ctx->completed = true;
  ctx->flush->outstanding--;
  RequestTracer& rt = server_.request_tracer();
  if (!ctx->traces.empty() && rt.enabled()) {
    for (size_t i = 0; i < ctx->op_indices.size(); i++) {
      const uint64_t handle = ctx->traces[i];
      const ResultCode code = results[ctx->op_indices[i]].code;
      if (handle == 0 || code == ResultCode::kBusy) {
        continue;  // busy ops stay live: they are re-sent under a new sequence
      }
      rt.Finish(handle, code);
    }
  }
}

void Client::SendBatch(const std::vector<KvOperation>& ops,
                       const std::vector<size_t>& indices,
                       const std::shared_ptr<FlushState>& flush) {
  // The frame header rides inside the packet budget, so a full batch still
  // fits one wire MTU instead of spilling into a second segment.
  const uint32_t budget =
      options_.batch_payload_bytes > kFrameHeaderBytes
          ? options_.batch_payload_bytes - static_cast<uint32_t>(kFrameHeaderBytes)
          : options_.batch_payload_bytes;
  size_t next = 0;
  while (next < indices.size()) {
    PacketBuilder builder(budget, options_.enable_compression);
    const size_t first = next;
    while (next < indices.size() && next - first < options_.max_ops_per_packet &&
           builder.Add(ops[indices[next]])) {
      next++;
    }
    KVD_CHECK_MSG(next > first, "operation exceeds packet payload budget");
    auto ctx = std::make_shared<PacketCtx>();
    ctx->sequence = next_sequence_++;
    ctx->op_indices.assign(indices.begin() + first, indices.begin() + next);
    ctx->frame = FramePacket(ctx->sequence, builder.Finish());
    ctx->flush = flush;
    RequestTracer& rt = server_.request_tracer();
    if (rt.enabled()) {
      // First send starts the trace; a busy re-send keeps its handle and
      // re-registers it under the new wire sequence so the server-side
      // lookup still resolves.
      ctx->traces.reserve(ctx->op_indices.size());
      for (size_t i = 0; i < ctx->op_indices.size(); i++) {
        const size_t idx = ctx->op_indices[i];
        uint64_t& handle = flush->traces[idx];
        if (handle == 0) {
          handle = rt.Start(ops[idx].opcode, ctx->sequence,
                            static_cast<uint32_t>(i));
        }
        ctx->traces.push_back(handle);
      }
      rt.RegisterPacket(ctx->sequence, ctx->traces);
    }
    flush->outstanding++;
    stats_.packets_sent++;
    TransmitPacket(ctx);
  }
}

std::vector<KvResultMessage> Client::FlushReliable(std::vector<KvOperation> ops) {
  Simulator& sim = server_.simulator();
  auto flush = std::make_shared<FlushState>();
  flush->results.resize(ops.size());
  flush->traces.resize(ops.size(), 0);

  std::vector<size_t> indices(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    indices[i] = i;
  }
  uint32_t busy_round = 0;
  while (true) {
    SendBatch(ops, indices, flush);
    while (flush->outstanding > 0) {
      KVD_CHECK_MSG(sim.Step(), "simulation idle with packets outstanding");
    }
    // Operations bounced with kBusy are re-sent — and only those, under new
    // sequences: their effects did not happen, while the rest of the packet
    // already executed and must not run twice.
    std::vector<size_t> busy;
    for (const size_t idx : indices) {
      if (flush->results[idx].code == ResultCode::kBusy) {
        busy.push_back(idx);
      }
    }
    if (busy.empty()) {
      break;
    }
    KVD_CHECK_MSG(busy_round < options_.retry.max_busy_retries,
                  "kBusy retries exhausted");
    const SimTime backoff = options_.retry.busy_backoff
                            << std::min(busy_round, uint32_t{20});
    busy_round++;
    stats_.busy_retries += busy.size();
    const SimTime backoff_start = sim.Now();
    RunFor(backoff);
    RequestTracer& rt = server_.request_tracer();
    if (rt.enabled()) {
      for (const size_t idx : busy) {
        rt.Span(flush->traces[idx], SpanKind::kBusyRetry, backoff_start,
                sim.Now(), busy_round);
      }
    }
    indices = std::move(busy);
  }
  return std::move(flush->results);
}

std::vector<KvResultMessage> Client::FlushUnreliable(std::vector<KvOperation> ops) {
  std::vector<KvResultMessage> results(ops.size());
  size_t packets_outstanding = 0;

  Simulator& sim = server_.simulator();
  NetworkModel& network = server_.network();

  // Split the operation stream into packets under the payload budget; each
  // packet independently traverses client -> server -> client.
  size_t next_op = 0;
  size_t result_base = 0;
  while (next_op < ops.size()) {
    PacketBuilder builder(options_.batch_payload_bytes, options_.enable_compression);
    const size_t first = next_op;
    while (next_op < ops.size() &&
           next_op - first < options_.max_ops_per_packet &&
           builder.Add(ops[next_op])) {
      next_op++;
    }
    KVD_CHECK_MSG(next_op > first, "operation exceeds packet payload budget");
    const size_t count = next_op - first;
    std::vector<uint8_t> payload = builder.Finish();
    stats_.packets_sent++;
    packets_outstanding++;

    const size_t base = result_base;
    result_base += count;
    // The payload size must be read before the move below captures it (the
    // evaluation order of arguments vs. captures is unspecified).
    const auto payload_size = static_cast<uint32_t>(payload.size());
    network.SendToServer(
        payload_size,
        [this, payload = std::move(payload), base, count, &results, &network,
         &packets_outstanding]() mutable {
          server_.DeliverPacket(
              std::move(payload),
              [base, count, &results, &network,
               &packets_outstanding](std::vector<uint8_t> response) {
                const auto response_size = static_cast<uint32_t>(response.size());
                network.SendToClient(
                    response_size,
                    [base, count, response = std::move(response), &results,
                     &packets_outstanding] {
                      Result<std::vector<KvResultMessage>> decoded =
                          DecodeResults(response);
                      KVD_CHECK(decoded.ok());
                      KVD_CHECK(decoded->size() == count);
                      for (size_t i = 0; i < count; i++) {
                        results[base + i] = std::move((*decoded)[i]);
                      }
                      packets_outstanding--;
                    });
              });
        });
  }
  while (packets_outstanding > 0) {
    KVD_CHECK_MSG(sim.Step(), "simulation idle with packets outstanding");
  }
  return results;
}

}  // namespace kvd
