// Host memory arena backing the KV store.
//
// In the paper, 64 GiB of server DRAM holds the hash index and the slab heap
// and the NIC reaches it only through PCIe DMA. Here it is a plain byte arena
// of configurable size; all store data structures live inside it at explicit
// offsets, with the exact bit-level layout the paper describes, so capacity
// and utilization experiments behave identically at smaller scale.
#ifndef SRC_MEM_HOST_MEMORY_H_
#define SRC_MEM_HOST_MEMORY_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/common/assert.h"

namespace kvd {

class HostMemory {
 public:
  explicit HostMemory(uint64_t size_bytes);

  uint64_t size() const { return size_; }

  std::span<uint8_t> Span(uint64_t address, uint64_t length) {
    KVD_DCHECK(address + length <= size_);
    return {data_.get() + address, length};
  }
  std::span<const uint8_t> Span(uint64_t address, uint64_t length) const {
    KVD_DCHECK(address + length <= size_);
    return {data_.get() + address, length};
  }

  void Read(uint64_t address, std::span<uint8_t> out) const;
  void Write(uint64_t address, std::span<const uint8_t> in);
  void Fill(uint64_t address, uint64_t length, uint8_t byte);

 private:
  uint64_t size_;
  std::unique_ptr<uint8_t[]> data_;
};

}  // namespace kvd

#endif  // SRC_MEM_HOST_MEMORY_H_
