// Memory access interface separating the store's *functional* behaviour from
// its *timing* behaviour.
//
// Every data-structure module (hash index, slab allocator, KV processor)
// touches memory only through AccessEngine. The engines stack:
//
//   DirectEngine          — reads/writes the arena, no accounting (unit tests)
//   CountingEngine        — adds DMA-equivalent access statistics; drives the
//                           "memory accesses per KV operation" figures
//   TraceRecordingEngine  — additionally records the per-operation access
//                           sequence, which the discrete-event pipeline
//                           replays through the PCIe/DRAM models
//
// One engine access corresponds to one DMA transaction in the paper's
// accounting: the hash index reads whole 64 B buckets and the slab heap is
// accessed in single contiguous extents per KV.
#ifndef SRC_MEM_ACCESS_ENGINE_H_
#define SRC_MEM_ACCESS_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/mem/host_memory.h"

namespace kvd {

enum class AccessKind : uint8_t { kRead, kWrite };

// One recorded memory transaction (DMA-equivalent).
struct AccessRecord {
  AccessKind kind;
  uint64_t address;
  uint32_t length;
};

struct AccessStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;

  uint64_t total() const { return reads + writes; }
  uint64_t total_bytes() const { return read_bytes + write_bytes; }

  AccessStats operator-(const AccessStats& other) const {
    return AccessStats{reads - other.reads, writes - other.writes,
                       read_bytes - other.read_bytes, write_bytes - other.write_bytes};
  }
};

class AccessEngine {
 public:
  virtual ~AccessEngine() = default;

  virtual void Read(uint64_t address, std::span<uint8_t> out) = 0;
  virtual void Write(uint64_t address, std::span<const uint8_t> in) = 0;

  virtual const AccessStats& stats() const = 0;
};

// Direct pass-through to the arena.
class DirectEngine final : public AccessEngine {
 public:
  explicit DirectEngine(HostMemory& memory) : memory_(memory) {}

  void Read(uint64_t address, std::span<uint8_t> out) override {
    memory_.Read(address, out);
    stats_.reads++;
    stats_.read_bytes += out.size();
  }
  void Write(uint64_t address, std::span<const uint8_t> in) override {
    memory_.Write(address, in);
    stats_.writes++;
    stats_.write_bytes += in.size();
  }

  const AccessStats& stats() const override { return stats_; }

  HostMemory& memory() { return memory_; }

 private:
  HostMemory& memory_;
  AccessStats stats_;
};

// Records the access sequence of the current operation on top of a base
// engine. The KV processor brackets each operation with BeginOp()/TakeTrace()
// and hands the trace to the timing pipeline.
class TraceRecordingEngine final : public AccessEngine {
 public:
  explicit TraceRecordingEngine(AccessEngine& base) : base_(base) {}

  void Read(uint64_t address, std::span<uint8_t> out) override {
    base_.Read(address, out);
    if (recording_) {
      trace_.push_back({AccessKind::kRead, address, static_cast<uint32_t>(out.size())});
    }
  }
  void Write(uint64_t address, std::span<const uint8_t> in) override {
    base_.Write(address, in);
    if (recording_) {
      trace_.push_back({AccessKind::kWrite, address, static_cast<uint32_t>(in.size())});
    }
  }

  const AccessStats& stats() const override { return base_.stats(); }

  void BeginOp() {
    trace_.clear();
    recording_ = true;
  }
  std::vector<AccessRecord> TakeTrace() {
    recording_ = false;
    return std::move(trace_);
  }

 private:
  AccessEngine& base_;
  bool recording_ = false;
  std::vector<AccessRecord> trace_;
};

}  // namespace kvd

#endif  // SRC_MEM_ACCESS_ENGINE_H_
