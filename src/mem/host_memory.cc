#include "src/mem/host_memory.h"

#include <cstring>

namespace kvd {

HostMemory::HostMemory(uint64_t size_bytes)
    : size_(size_bytes), data_(new uint8_t[size_bytes]()) {
  KVD_CHECK_MSG(size_bytes > 0, "zero-sized host memory");
}

void HostMemory::Read(uint64_t address, std::span<uint8_t> out) const {
  KVD_CHECK(address + out.size() <= size_);
  std::memcpy(out.data(), data_.get() + address, out.size());
}

void HostMemory::Write(uint64_t address, std::span<const uint8_t> in) {
  KVD_CHECK(address + in.size() <= size_);
  std::memcpy(data_.get() + address, in.data(), in.size());
}

void HostMemory::Fill(uint64_t address, uint64_t length, uint8_t byte) {
  KVD_CHECK(address + length <= size_);
  std::memset(data_.get() + address, byte, length);
}

}  // namespace kvd
