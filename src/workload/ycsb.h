// YCSB-style workload generation (paper §5: "For system benchmark, we use
// YCSB workload. For skewed Zipf workload, we choose skewness 0.99 and refer
// it as long-tail workload").
#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/zipf.h"
#include "src/net/kv_types.h"

namespace kvd {

enum class KeyDistribution : uint8_t {
  kUniform,
  kLongTail,  // scrambled Zipf, theta = 0.99
};

struct WorkloadConfig {
  uint64_t num_keys = 100000;
  uint32_t key_bytes = 8;    // ids encoded little-endian, zero padded
  uint32_t value_bytes = 8;  // kv size = key_bytes + value_bytes
  double get_ratio = 1.0;    // remainder are PUTs
  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipf_theta = 0.99;
  uint64_t seed = 42;

  // The paper's named mixes.
  static WorkloadConfig YcsbA() {
    WorkloadConfig config;
    config.get_ratio = 0.5;
    return config;
  }
  static WorkloadConfig YcsbB() {
    WorkloadConfig config;
    config.get_ratio = 0.95;
    return config;
  }
  static WorkloadConfig YcsbC() {
    WorkloadConfig config;
    config.get_ratio = 1.0;
    return config;
  }
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const WorkloadConfig& config);

  // Encodes key id -> key bytes (stable across calls).
  std::vector<uint8_t> KeyFor(uint64_t id) const;

  // Samples the configured popularity distribution.
  uint64_t NextKeyId();

  // Produces the next operation of the mix. PUT values are filled with a
  // per-operation byte pattern so overwrites are distinguishable.
  KvOperation NextOp();

  // All (key, value) pairs for preloading the store to a target size.
  KvOperation LoadOpFor(uint64_t id) const;

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
  ZipfGenerator zipf_;
  uint64_t op_counter_ = 0;
};

}  // namespace kvd

#endif  // SRC_WORKLOAD_YCSB_H_
