// Operation-trace capture and replay.
//
// Research workflows record a workload once (e.g., a tuned YCSB mix) and
// replay it byte-identically across configurations — the only way an
// A/B comparison of server knobs isolates the knob. The trace file reuses
// the network wire encoding (wire_format.h), so a trace is also a corpus of
// valid packets for decoder testing.
//
// File layout: 8-byte magic "KVDTRACE", u32 version, u32 op count, then the
// operations encoded as one PacketBuilder stream (compression enabled —
// traces of regular workloads shrink accordingly).
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/kv_types.h"

namespace kvd {

// Serializes operations to the trace byte format.
std::vector<uint8_t> EncodeTrace(const std::vector<KvOperation>& ops);

// Parses a trace; rejects bad magic, version, or truncation.
Result<std::vector<KvOperation>> DecodeTrace(const std::vector<uint8_t>& bytes);

// File convenience wrappers.
Status WriteTraceFile(const std::string& path, const std::vector<KvOperation>& ops);
Result<std::vector<KvOperation>> ReadTraceFile(const std::string& path);

}  // namespace kvd

#endif  // SRC_WORKLOAD_TRACE_H_
