#include "src/workload/trace.h"

#include <cstdio>
#include <cstring>

#include "src/net/wire_format.h"

namespace kvd {
namespace {

constexpr char kMagic[8] = {'K', 'V', 'D', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4;

}  // namespace

std::vector<uint8_t> EncodeTrace(const std::vector<KvOperation>& ops) {
  // One unbounded packet stream: the wire codec already handles every op
  // shape and compresses repeated sizes/values.
  PacketBuilder builder(~0u, /*enable_compression=*/true);
  for (const KvOperation& op : ops) {
    KVD_CHECK_MSG(builder.Add(op), "trace op exceeded the unbounded budget");
  }
  std::vector<uint8_t> body = builder.Finish();

  std::vector<uint8_t> out(kHeaderBytes + body.size());
  std::memcpy(out.data(), kMagic, 8);
  std::memcpy(out.data() + 8, &kVersion, 4);
  const auto count = static_cast<uint32_t>(ops.size());
  std::memcpy(out.data() + 12, &count, 4);
  std::memcpy(out.data() + kHeaderBytes, body.data(), body.size());
  return out;
}

Result<std::vector<KvOperation>> DecodeTrace(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes || std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Status::InvalidArgument("not a KVD trace");
  }
  uint32_t version;
  uint32_t count;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&count, bytes.data() + 12, 4);
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported trace version");
  }
  PacketParser parser(
      std::vector<uint8_t>(bytes.begin() + kHeaderBytes, bytes.end()));
  std::vector<KvOperation> ops;
  ops.reserve(count);
  while (true) {
    Result<std::optional<KvOperation>> next = parser.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (!next->has_value()) {
      break;
    }
    ops.push_back(std::move(**next));
  }
  if (ops.size() != count) {
    return Status::InvalidArgument("trace op count mismatch");
  }
  return ops;
}

Status WriteTraceFile(const std::string& path, const std::vector<KvOperation>& ops) {
  const std::vector<uint8_t> bytes = EncodeTrace(ops);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (written != bytes.size()) {
    return Status::Internal("short trace write");
  }
  return Status::Ok();
}

Result<std::vector<KvOperation>> ReadTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("trace file missing");
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (read != bytes.size()) {
    return Status::Internal("short trace read");
  }
  return DecodeTrace(bytes);
}

}  // namespace kvd
