#include "src/workload/ycsb.h"

#include <cstring>

#include "src/common/assert.h"

namespace kvd {

YcsbWorkload::YcsbWorkload(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_keys, config.zipf_theta) {
  KVD_CHECK(config.num_keys > 0);
  KVD_CHECK(config.key_bytes >= 1 && config.key_bytes <= 255);
  KVD_CHECK(config.get_ratio >= 0.0 && config.get_ratio <= 1.0);
}

std::vector<uint8_t> YcsbWorkload::KeyFor(uint64_t id) const {
  std::vector<uint8_t> key(config_.key_bytes, 0);
  std::memcpy(key.data(), &id, std::min<size_t>(sizeof(id), key.size()));
  return key;
}

uint64_t YcsbWorkload::NextKeyId() {
  if (config_.distribution == KeyDistribution::kLongTail) {
    return zipf_.NextScrambled(rng_);
  }
  return rng_.NextBelow(config_.num_keys);
}

KvOperation YcsbWorkload::NextOp() {
  op_counter_++;
  KvOperation op;
  op.key = KeyFor(NextKeyId());
  if (rng_.NextBool(config_.get_ratio)) {
    op.opcode = Opcode::kGet;
  } else {
    op.opcode = Opcode::kPut;
    op.value.assign(config_.value_bytes, static_cast<uint8_t>(op_counter_));
  }
  return op;
}

KvOperation YcsbWorkload::LoadOpFor(uint64_t id) const {
  KvOperation op;
  op.opcode = Opcode::kPut;
  op.key = KeyFor(id);
  op.value.assign(config_.value_bytes, static_cast<uint8_t>(id * 37 + 11));
  return op;
}

}  // namespace kvd
