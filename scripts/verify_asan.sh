#!/usr/bin/env bash
# Builds the full tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the test suite. The fault-injection tests (ctest -L fault) exercise the
# retry/replay/ECC paths under sanitizers, which is where use-after-free bugs
# in completion callbacks would surface (late duplicate responses arriving
# after a flush completes). The transport tests (ctest -L transport) are then
# repeated explicitly: the reliable-channel layer owns every retransmission
# buffer and replay-cache entry, so a lifetime bug there poisons all clients.
#
# Usage: scripts/verify_asan.sh [build-dir]    (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKVD_SANITIZE=address,undefined
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

ctest --test-dir "${BUILD_DIR}" --output-on-failure
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L transport
# The cluster tests are repeated too: migration chunk buffers and forwarded
# session records cross group lifetimes, prime use-after-free territory.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L cluster
# And the consistency-check suite: the checker's DFS recursion and the
# nemesis scenario teardown own cross-object histories worth a lifetime pass.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L check
echo "sanitizer run clean"
