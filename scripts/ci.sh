#!/usr/bin/env bash
# One-command CI gate: the tier-1 build + test pass, then the sanitizer
# sweeps. Mirrors exactly what a reviewer runs by hand:
#
#   1. layering guard — the transport layer (src/transport) must hold the only
#      copy of the framing/replay-dedup logic;
#   2. configure + build (default flags) and run the full ctest suite;
#   3. golden determinism — the benchmark --golden rows must match the
#      checked-in bench/golden/*.json byte for byte;
#   4. scripts/verify_asan.sh  — ASan+UBSan build, full suite;
#   5. scripts/verify_ubsan.sh — pure-UBSan build, full suite.
#
# The tier-1 stage runs first and alone decides pass/fail for correctness;
# the sanitizer stages catch memory/UB bugs that the plain build hides.
# Set KVD_CI_SKIP_SANITIZERS=1 for a quick tier-1-only pass.
#
# Usage: scripts/ci.sh [build-dir]    (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

echo "=== layering guard: one transport implementation ==="
# The reliable channel lives in src/transport and nowhere else. A second copy
# of the replay-entry bookkeeping or of the frame checksum constant is exactly
# the duplication the layering refactor removed; fail fast if one reappears.
leaks=$(grep -rnE 'ReplayEntry|0xf4a3e' src bench tests --include='*.h' --include='*.cc' \
          | grep -v '^src/transport/' || true)
if [[ -n "${leaks}" ]]; then
  echo "framing/replay logic found outside src/transport:" >&2
  echo "${leaks}" >&2
  exit 1
fi

echo "=== tier-1: configure + build + ctest ==="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "=== overload-control suite (ctest -L overload) ==="
# Deadlines, admission shedding, retry budgets, hedging, gray demotion
# (DESIGN.md §12) — run again by label so a regression names itself.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L overload

echo "=== cluster control-plane suite (ctest -L cluster) ==="
# Shard map, live migration, chaos soak on the copy stream, rebalancing
# (DESIGN.md §14) — run again by label so a regression names itself.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L cluster

echo "=== consistency-check suite (ctest -L check) ==="
# Linearizability checker self-tests plus the nemesis explorer regression
# (DESIGN.md §15) — run again by label so a regression names itself.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L check

echo "=== nemesis seed matrix: 32 seeds, history-checked ==="
# A bounded consistency sweep: 32 seeded fault scripts over the cluster
# scenario, every recorded history checked for linearizability and session
# guarantees. Any violation prints a shrunk minimal reproducer and fails CI.
"${BUILD_DIR}/tests/nemesis_matrix" --seeds 32 --rounds 6
# The harness must still be able to fail: the injected lost-update bug has
# to be caught by the same matrix (exit 1), or the green run above means
# nothing.
if "${BUILD_DIR}/tests/nemesis_matrix" --seeds 32 --rounds 6 --bug >/dev/null; then
  echo "nemesis matrix failed to catch the injected bug" >&2
  exit 1
fi
echo "nemesis matrix clean (and the injected bug is still caught)"

echo "=== golden determinism: bench --golden vs bench/golden/*.json ==="
GOLDEN_TMP=$(mktemp -d)
trap 'rm -rf "${GOLDEN_TMP}"' EXIT
"${BUILD_DIR}/bench/bench_fig16_throughput" --golden --json "${GOLDEN_TMP}/fig16_throughput.json" >/dev/null
"${BUILD_DIR}/bench/bench_chaos"            --golden --json "${GOLDEN_TMP}/chaos.json"            >/dev/null
"${BUILD_DIR}/bench/bench_replication"      --golden --json "${GOLDEN_TMP}/replication.json"      >/dev/null
"${BUILD_DIR}/bench/bench_overload"         --golden --json "${GOLDEN_TMP}/overload.json"         >/dev/null
"${BUILD_DIR}/bench/bench_rebalance"        --golden --json "${GOLDEN_TMP}/rebalance.json"        >/dev/null
for golden in fig16_throughput chaos replication overload rebalance; do
  cmp "bench/golden/${golden}.json" "${GOLDEN_TMP}/${golden}.json"
done
echo "golden rows byte-identical"

if [[ "${KVD_CI_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo "ci pass (sanitizers skipped)"
  exit 0
fi

echo "=== asan+ubsan sweep ==="
scripts/verify_asan.sh "${BUILD_DIR}-asan"

echo "=== ubsan sweep ==="
scripts/verify_ubsan.sh "${BUILD_DIR}-ubsan"

echo "ci pass"
