#!/usr/bin/env bash
# One-command CI gate: the tier-1 build + test pass, then the sanitizer
# sweeps. Mirrors exactly what a reviewer runs by hand:
#
#   1. configure + build (default flags) and run the full ctest suite;
#   2. scripts/verify_asan.sh  — ASan+UBSan build, full suite;
#   3. scripts/verify_ubsan.sh — pure-UBSan build, full suite.
#
# The tier-1 stage runs first and alone decides pass/fail for correctness;
# the sanitizer stages catch memory/UB bugs that the plain build hides.
# Set KVD_CI_SKIP_SANITIZERS=1 for a quick tier-1-only pass.
#
# Usage: scripts/ci.sh [build-dir]    (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

if [[ "${KVD_CI_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo "ci pass (sanitizers skipped)"
  exit 0
fi

echo "=== asan+ubsan sweep ==="
scripts/verify_asan.sh "${BUILD_DIR}-asan"

echo "=== ubsan sweep ==="
scripts/verify_ubsan.sh "${BUILD_DIR}-ubsan"

echo "ci pass"
