#!/usr/bin/env bash
# Builds the full tree with UndefinedBehaviorSanitizer only and runs the test
# suite. Pure-UBSan builds are much faster than the combined ASan run
# (scripts/verify_asan.sh) and catch a disjoint bug class: signed overflow in
# simulated-time arithmetic, misaligned loads in the wire codecs, and invalid
# enum values decoded from (fault-injected) corrupt frames. The replication
# tests (ctest -L replica) drive the epoch/log-index arithmetic through
# failover, where an overflow would silently reorder the log. The transport
# tests (ctest -L transport) are then repeated explicitly: frame parsing and
# the exponential-backoff shift are the tree's densest unaligned-load and
# shift-width territory.
#
# Usage: scripts/verify_ubsan.sh [build-dir]    (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKVD_SANITIZE=undefined
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

ctest --test-dir "${BUILD_DIR}" --output-on-failure
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L transport
# The cluster tests are repeated too: the routed-request extension and the
# copy-stream framing decode fault-injected corrupt bytes.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L cluster
# And the consistency-check suite: history fingerprinting and the checker's
# interval arithmetic run on full-width SimTime values.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L check
echo "ubsan run clean"
