# Empty compiler generated dependencies file for kvd_pcie.
# This may be replaced when dependencies are built.
