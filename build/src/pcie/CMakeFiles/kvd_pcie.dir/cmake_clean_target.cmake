file(REMOVE_RECURSE
  "libkvd_pcie.a"
)
