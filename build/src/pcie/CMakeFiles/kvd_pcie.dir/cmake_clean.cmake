file(REMOVE_RECURSE
  "CMakeFiles/kvd_pcie.dir/dma_engine.cc.o"
  "CMakeFiles/kvd_pcie.dir/dma_engine.cc.o.d"
  "CMakeFiles/kvd_pcie.dir/pcie_link.cc.o"
  "CMakeFiles/kvd_pcie.dir/pcie_link.cc.o.d"
  "libkvd_pcie.a"
  "libkvd_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
