# Empty dependencies file for kvd_common.
# This may be replaced when dependencies are built.
