file(REMOVE_RECURSE
  "libkvd_common.a"
)
