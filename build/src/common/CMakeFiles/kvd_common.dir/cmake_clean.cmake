file(REMOVE_RECURSE
  "CMakeFiles/kvd_common.dir/hashing.cc.o"
  "CMakeFiles/kvd_common.dir/hashing.cc.o.d"
  "CMakeFiles/kvd_common.dir/random.cc.o"
  "CMakeFiles/kvd_common.dir/random.cc.o.d"
  "CMakeFiles/kvd_common.dir/stats.cc.o"
  "CMakeFiles/kvd_common.dir/stats.cc.o.d"
  "CMakeFiles/kvd_common.dir/status.cc.o"
  "CMakeFiles/kvd_common.dir/status.cc.o.d"
  "CMakeFiles/kvd_common.dir/table_printer.cc.o"
  "CMakeFiles/kvd_common.dir/table_printer.cc.o.d"
  "CMakeFiles/kvd_common.dir/zipf.cc.o"
  "CMakeFiles/kvd_common.dir/zipf.cc.o.d"
  "libkvd_common.a"
  "libkvd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
