# Empty dependencies file for kvd_hash.
# This may be replaced when dependencies are built.
