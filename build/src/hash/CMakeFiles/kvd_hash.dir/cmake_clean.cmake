file(REMOVE_RECURSE
  "CMakeFiles/kvd_hash.dir/hash_index.cc.o"
  "CMakeFiles/kvd_hash.dir/hash_index.cc.o.d"
  "libkvd_hash.a"
  "libkvd_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
