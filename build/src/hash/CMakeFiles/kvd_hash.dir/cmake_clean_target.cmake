file(REMOVE_RECURSE
  "libkvd_hash.a"
)
