file(REMOVE_RECURSE
  "CMakeFiles/kvd_net.dir/network_model.cc.o"
  "CMakeFiles/kvd_net.dir/network_model.cc.o.d"
  "CMakeFiles/kvd_net.dir/wire_format.cc.o"
  "CMakeFiles/kvd_net.dir/wire_format.cc.o.d"
  "libkvd_net.a"
  "libkvd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
