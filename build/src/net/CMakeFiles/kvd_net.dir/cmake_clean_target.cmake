file(REMOVE_RECURSE
  "libkvd_net.a"
)
