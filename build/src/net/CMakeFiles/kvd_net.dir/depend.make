# Empty dependencies file for kvd_net.
# This may be replaced when dependencies are built.
