file(REMOVE_RECURSE
  "libkvd_core.a"
)
