# Empty dependencies file for kvd_core.
# This may be replaced when dependencies are built.
