file(REMOVE_RECURSE
  "CMakeFiles/kvd_core.dir/diagnostics.cc.o"
  "CMakeFiles/kvd_core.dir/diagnostics.cc.o.d"
  "CMakeFiles/kvd_core.dir/kv_direct.cc.o"
  "CMakeFiles/kvd_core.dir/kv_direct.cc.o.d"
  "CMakeFiles/kvd_core.dir/kv_processor.cc.o"
  "CMakeFiles/kvd_core.dir/kv_processor.cc.o.d"
  "CMakeFiles/kvd_core.dir/multi_nic.cc.o"
  "CMakeFiles/kvd_core.dir/multi_nic.cc.o.d"
  "CMakeFiles/kvd_core.dir/update_functions.cc.o"
  "CMakeFiles/kvd_core.dir/update_functions.cc.o.d"
  "libkvd_core.a"
  "libkvd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
