file(REMOVE_RECURSE
  "libkvd_mem.a"
)
