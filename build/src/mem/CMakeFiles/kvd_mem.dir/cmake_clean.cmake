file(REMOVE_RECURSE
  "CMakeFiles/kvd_mem.dir/host_memory.cc.o"
  "CMakeFiles/kvd_mem.dir/host_memory.cc.o.d"
  "libkvd_mem.a"
  "libkvd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
