# Empty compiler generated dependencies file for kvd_mem.
# This may be replaced when dependencies are built.
