file(REMOVE_RECURSE
  "CMakeFiles/kvd_ooo.dir/reservation_station.cc.o"
  "CMakeFiles/kvd_ooo.dir/reservation_station.cc.o.d"
  "libkvd_ooo.a"
  "libkvd_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
