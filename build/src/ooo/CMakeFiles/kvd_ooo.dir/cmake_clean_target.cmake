file(REMOVE_RECURSE
  "libkvd_ooo.a"
)
