# Empty compiler generated dependencies file for kvd_ooo.
# This may be replaced when dependencies are built.
