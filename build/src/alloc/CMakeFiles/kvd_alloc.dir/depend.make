# Empty dependencies file for kvd_alloc.
# This may be replaced when dependencies are built.
