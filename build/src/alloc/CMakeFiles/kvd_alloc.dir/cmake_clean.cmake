file(REMOVE_RECURSE
  "CMakeFiles/kvd_alloc.dir/allocation_bitmap.cc.o"
  "CMakeFiles/kvd_alloc.dir/allocation_bitmap.cc.o.d"
  "CMakeFiles/kvd_alloc.dir/dstack.cc.o"
  "CMakeFiles/kvd_alloc.dir/dstack.cc.o.d"
  "CMakeFiles/kvd_alloc.dir/host_daemon.cc.o"
  "CMakeFiles/kvd_alloc.dir/host_daemon.cc.o.d"
  "CMakeFiles/kvd_alloc.dir/merger.cc.o"
  "CMakeFiles/kvd_alloc.dir/merger.cc.o.d"
  "CMakeFiles/kvd_alloc.dir/slab_allocator.cc.o"
  "CMakeFiles/kvd_alloc.dir/slab_allocator.cc.o.d"
  "libkvd_alloc.a"
  "libkvd_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
