file(REMOVE_RECURSE
  "libkvd_alloc.a"
)
