
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation_bitmap.cc" "src/alloc/CMakeFiles/kvd_alloc.dir/allocation_bitmap.cc.o" "gcc" "src/alloc/CMakeFiles/kvd_alloc.dir/allocation_bitmap.cc.o.d"
  "/root/repo/src/alloc/dstack.cc" "src/alloc/CMakeFiles/kvd_alloc.dir/dstack.cc.o" "gcc" "src/alloc/CMakeFiles/kvd_alloc.dir/dstack.cc.o.d"
  "/root/repo/src/alloc/host_daemon.cc" "src/alloc/CMakeFiles/kvd_alloc.dir/host_daemon.cc.o" "gcc" "src/alloc/CMakeFiles/kvd_alloc.dir/host_daemon.cc.o.d"
  "/root/repo/src/alloc/merger.cc" "src/alloc/CMakeFiles/kvd_alloc.dir/merger.cc.o" "gcc" "src/alloc/CMakeFiles/kvd_alloc.dir/merger.cc.o.d"
  "/root/repo/src/alloc/slab_allocator.cc" "src/alloc/CMakeFiles/kvd_alloc.dir/slab_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/kvd_alloc.dir/slab_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/kvd_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
