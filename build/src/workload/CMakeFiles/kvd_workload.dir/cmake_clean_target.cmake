file(REMOVE_RECURSE
  "libkvd_workload.a"
)
