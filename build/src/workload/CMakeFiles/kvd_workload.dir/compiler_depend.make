# Empty compiler generated dependencies file for kvd_workload.
# This may be replaced when dependencies are built.
