file(REMOVE_RECURSE
  "CMakeFiles/kvd_workload.dir/trace.cc.o"
  "CMakeFiles/kvd_workload.dir/trace.cc.o.d"
  "CMakeFiles/kvd_workload.dir/ycsb.cc.o"
  "CMakeFiles/kvd_workload.dir/ycsb.cc.o.d"
  "libkvd_workload.a"
  "libkvd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
