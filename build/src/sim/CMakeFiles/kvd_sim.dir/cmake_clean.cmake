file(REMOVE_RECURSE
  "CMakeFiles/kvd_sim.dir/simulator.cc.o"
  "CMakeFiles/kvd_sim.dir/simulator.cc.o.d"
  "CMakeFiles/kvd_sim.dir/token_pool.cc.o"
  "CMakeFiles/kvd_sim.dir/token_pool.cc.o.d"
  "libkvd_sim.a"
  "libkvd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
