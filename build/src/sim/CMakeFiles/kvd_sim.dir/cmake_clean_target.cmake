file(REMOVE_RECURSE
  "libkvd_sim.a"
)
