# Empty dependencies file for kvd_sim.
# This may be replaced when dependencies are built.
