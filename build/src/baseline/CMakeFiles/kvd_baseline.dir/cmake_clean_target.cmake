file(REMOVE_RECURSE
  "libkvd_baseline.a"
)
