file(REMOVE_RECURSE
  "CMakeFiles/kvd_baseline.dir/cpu_kvs.cc.o"
  "CMakeFiles/kvd_baseline.dir/cpu_kvs.cc.o.d"
  "CMakeFiles/kvd_baseline.dir/cuckoo_hash_table.cc.o"
  "CMakeFiles/kvd_baseline.dir/cuckoo_hash_table.cc.o.d"
  "CMakeFiles/kvd_baseline.dir/hopscotch_hash_table.cc.o"
  "CMakeFiles/kvd_baseline.dir/hopscotch_hash_table.cc.o.d"
  "libkvd_baseline.a"
  "libkvd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
