
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cpu_kvs.cc" "src/baseline/CMakeFiles/kvd_baseline.dir/cpu_kvs.cc.o" "gcc" "src/baseline/CMakeFiles/kvd_baseline.dir/cpu_kvs.cc.o.d"
  "/root/repo/src/baseline/cuckoo_hash_table.cc" "src/baseline/CMakeFiles/kvd_baseline.dir/cuckoo_hash_table.cc.o" "gcc" "src/baseline/CMakeFiles/kvd_baseline.dir/cuckoo_hash_table.cc.o.d"
  "/root/repo/src/baseline/hopscotch_hash_table.cc" "src/baseline/CMakeFiles/kvd_baseline.dir/hopscotch_hash_table.cc.o" "gcc" "src/baseline/CMakeFiles/kvd_baseline.dir/hopscotch_hash_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/kvd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kvd_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
