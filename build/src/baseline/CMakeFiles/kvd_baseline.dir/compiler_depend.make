# Empty compiler generated dependencies file for kvd_baseline.
# This may be replaced when dependencies are built.
