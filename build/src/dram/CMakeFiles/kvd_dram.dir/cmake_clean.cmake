file(REMOVE_RECURSE
  "CMakeFiles/kvd_dram.dir/dram_cache_store.cc.o"
  "CMakeFiles/kvd_dram.dir/dram_cache_store.cc.o.d"
  "CMakeFiles/kvd_dram.dir/ecc_metadata.cc.o"
  "CMakeFiles/kvd_dram.dir/ecc_metadata.cc.o.d"
  "CMakeFiles/kvd_dram.dir/load_dispatcher.cc.o"
  "CMakeFiles/kvd_dram.dir/load_dispatcher.cc.o.d"
  "CMakeFiles/kvd_dram.dir/nic_dram.cc.o"
  "CMakeFiles/kvd_dram.dir/nic_dram.cc.o.d"
  "libkvd_dram.a"
  "libkvd_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvd_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
