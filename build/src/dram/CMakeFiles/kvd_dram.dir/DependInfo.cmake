
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/dram_cache_store.cc" "src/dram/CMakeFiles/kvd_dram.dir/dram_cache_store.cc.o" "gcc" "src/dram/CMakeFiles/kvd_dram.dir/dram_cache_store.cc.o.d"
  "/root/repo/src/dram/ecc_metadata.cc" "src/dram/CMakeFiles/kvd_dram.dir/ecc_metadata.cc.o" "gcc" "src/dram/CMakeFiles/kvd_dram.dir/ecc_metadata.cc.o.d"
  "/root/repo/src/dram/load_dispatcher.cc" "src/dram/CMakeFiles/kvd_dram.dir/load_dispatcher.cc.o" "gcc" "src/dram/CMakeFiles/kvd_dram.dir/load_dispatcher.cc.o.d"
  "/root/repo/src/dram/nic_dram.cc" "src/dram/CMakeFiles/kvd_dram.dir/nic_dram.cc.o" "gcc" "src/dram/CMakeFiles/kvd_dram.dir/nic_dram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/kvd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/kvd_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
