file(REMOVE_RECURSE
  "libkvd_dram.a"
)
