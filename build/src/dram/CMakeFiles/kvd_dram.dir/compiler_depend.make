# Empty compiler generated dependencies file for kvd_dram.
# This may be replaced when dependencies are built.
