
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/coverage_test.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/coverage_test.dir/coverage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kvd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/kvd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/kvd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/kvd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kvd_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/kvd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ooo/CMakeFiles/kvd_ooo.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/kvd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kvd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kvd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
