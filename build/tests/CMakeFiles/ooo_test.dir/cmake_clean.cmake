file(REMOVE_RECURSE
  "CMakeFiles/ooo_test.dir/ooo_test.cc.o"
  "CMakeFiles/ooo_test.dir/ooo_test.cc.o.d"
  "ooo_test"
  "ooo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
