file(REMOVE_RECURSE
  "CMakeFiles/multi_nic_test.dir/multi_nic_test.cc.o"
  "CMakeFiles/multi_nic_test.dir/multi_nic_test.cc.o.d"
  "multi_nic_test"
  "multi_nic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
