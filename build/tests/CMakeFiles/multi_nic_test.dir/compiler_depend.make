# Empty compiler generated dependencies file for multi_nic_test.
# This may be replaced when dependencies are built.
