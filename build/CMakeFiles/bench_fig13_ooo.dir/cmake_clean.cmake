file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ooo.dir/bench/bench_fig13_ooo.cc.o"
  "CMakeFiles/bench_fig13_ooo.dir/bench/bench_fig13_ooo.cc.o.d"
  "bench/bench_fig13_ooo"
  "bench/bench_fig13_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
