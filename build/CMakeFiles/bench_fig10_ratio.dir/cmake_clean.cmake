file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ratio.dir/bench/bench_fig10_ratio.cc.o"
  "CMakeFiles/bench_fig10_ratio.dir/bench/bench_fig10_ratio.cc.o.d"
  "bench/bench_fig10_ratio"
  "bench/bench_fig10_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
