file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_hashindex.dir/bench/bench_fig09_hashindex.cc.o"
  "CMakeFiles/bench_fig09_hashindex.dir/bench/bench_fig09_hashindex.cc.o.d"
  "bench/bench_fig09_hashindex"
  "bench/bench_fig09_hashindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_hashindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
