# Empty compiler generated dependencies file for bench_fig09_hashindex.
# This may be replaced when dependencies are built.
