# Empty dependencies file for bench_fig06_inline.
# This may be replaced when dependencies are built.
