file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_inline.dir/bench/bench_fig06_inline.cc.o"
  "CMakeFiles/bench_fig06_inline.dir/bench/bench_fig06_inline.cc.o.d"
  "bench/bench_fig06_inline"
  "bench/bench_fig06_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
