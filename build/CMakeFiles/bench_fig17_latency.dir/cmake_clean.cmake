file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_latency.dir/bench/bench_fig17_latency.cc.o"
  "CMakeFiles/bench_fig17_latency.dir/bench/bench_fig17_latency.cc.o.d"
  "bench/bench_fig17_latency"
  "bench/bench_fig17_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
