file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_merge.dir/bench/bench_fig12_merge.cc.o"
  "CMakeFiles/bench_fig12_merge.dir/bench/bench_fig12_merge.cc.o.d"
  "bench/bench_fig12_merge"
  "bench/bench_fig12_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
