file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_pcie.dir/bench/bench_fig03_pcie.cc.o"
  "CMakeFiles/bench_fig03_pcie.dir/bench/bench_fig03_pcie.cc.o.d"
  "bench/bench_fig03_pcie"
  "bench/bench_fig03_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
