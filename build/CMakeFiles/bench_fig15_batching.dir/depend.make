# Empty dependencies file for bench_fig15_batching.
# This may be replaced when dependencies are built.
