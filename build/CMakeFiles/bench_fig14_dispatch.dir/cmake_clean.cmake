file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dispatch.dir/bench/bench_fig14_dispatch.cc.o"
  "CMakeFiles/bench_fig14_dispatch.dir/bench/bench_fig14_dispatch.cc.o.d"
  "bench/bench_fig14_dispatch"
  "bench/bench_fig14_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
