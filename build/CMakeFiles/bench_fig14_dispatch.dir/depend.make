# Empty dependencies file for bench_fig14_dispatch.
# This may be replaced when dependencies are built.
