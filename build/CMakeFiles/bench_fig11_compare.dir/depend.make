# Empty dependencies file for bench_fig11_compare.
# This may be replaced when dependencies are built.
