file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_compare.dir/bench/bench_fig11_compare.cc.o"
  "CMakeFiles/bench_fig11_compare.dir/bench/bench_fig11_compare.cc.o.d"
  "bench/bench_fig11_compare"
  "bench/bench_fig11_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
