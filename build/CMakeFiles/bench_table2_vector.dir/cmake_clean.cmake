file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_vector.dir/bench/bench_table2_vector.cc.o"
  "CMakeFiles/bench_table2_vector.dir/bench/bench_table2_vector.cc.o.d"
  "bench/bench_table2_vector"
  "bench/bench_table2_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
