# Empty dependencies file for bench_table2_vector.
# This may be replaced when dependencies are built.
