file(REMOVE_RECURSE
  "CMakeFiles/tpcc_stock.dir/tpcc_stock.cpp.o"
  "CMakeFiles/tpcc_stock.dir/tpcc_stock.cpp.o.d"
  "tpcc_stock"
  "tpcc_stock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_stock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
