# Empty dependencies file for tpcc_stock.
# This may be replaced when dependencies are built.
