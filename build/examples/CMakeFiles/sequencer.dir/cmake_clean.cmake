file(REMOVE_RECURSE
  "CMakeFiles/sequencer.dir/sequencer.cpp.o"
  "CMakeFiles/sequencer.dir/sequencer.cpp.o.d"
  "sequencer"
  "sequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
