# Empty dependencies file for sequencer.
# This may be replaced when dependencies are built.
